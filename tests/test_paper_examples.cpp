// Executable walkthroughs of the paper's worked examples and figures.
// Each test states which part of the paper it reproduces; together they
// cover the narrative of Sections 2, 5, 6, 7.7, 8 and 10.1.

#include <gtest/gtest.h>

#include "benchgen/paper_relations.hpp"
#include "brel/solver.hpp"
#include "decomp/decompose.hpp"
#include "equations/equations.hpp"
#include "gyocro/gyocro.hpp"
#include "relation/enumeration.hpp"

namespace brel {
namespace {

class PaperExamplesTest : public ::testing::Test {
 protected:
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);

  std::vector<bool> vertex(bool x1, bool x2) {
    std::vector<bool> v(mgr.num_vars(), false);
    v[space.inputs[0]] = x1;
    v[space.inputs[1]] = x2;
    return v;
  }
};

// Fig. 1 / Sec. 1: the flexibility of vertex 11 ({10, 11}) is a cube (1-)
// and could be a don't care; the flexibility of vertex 10 ({00, 11})
// cannot be expressed with don't cares.
TEST_F(PaperExamplesTest, Fig1FlexibilityKinds) {
  const BooleanRelation r = fig1_relation(mgr, space);
  // Vertex 11: image {10, 11} is the output cube 1-.
  const Bdd cube_image = mgr.literal(space.outputs[0], true);
  const Bdd v11 = mgr.literal(space.inputs[0], true) &
                  mgr.literal(space.inputs[1], true);
  EXPECT_TRUE((mgr.constrain(r.characteristic(), v11)) == cube_image);
  // Vertex 10: {00, 11} is not a cube — its MISF expansion blows up to
  // all four vertices (Example 5.2).
  EXPECT_EQ(r.misf().image_of(vertex(true, false)).size(), 4u);
}

// Fig. 2 / Sec. 2, steps (a)-(e): the full recursive paradigm on Fig. 1.
TEST_F(PaperExamplesTest, Fig2RecursiveParadigmWalkthrough) {
  const BooleanRelation r = fig1_relation(mgr, space);
  // (a) over-approximate into an MISF.
  const BooleanRelation misf = r.misf();
  EXPECT_TRUE(r.characteristic().subset_of(misf.characteristic()));
  // (b) minimize the MISF per output: (y1 ⇔ x1)(y2 ⇔ x2).
  const IsfMinimizer minimizer{};
  MultiFunction f;
  f.outputs = {minimizer.minimize(r.project_output(0)),
               minimizer.minimize(r.project_output(1))};
  EXPECT_TRUE(f.outputs[0] == mgr.var(space.inputs[0]));
  EXPECT_TRUE(f.outputs[1] == mgr.var(space.inputs[1]));
  // (c) conflict at input vertex 10 (Example 5.4).
  const Bdd incomp = r.incompatibilities(f);
  EXPECT_FALSE(incomp.is_zero());
  const Bdd conflict_inputs = mgr.exists(incomp, space.outputs);
  EXPECT_TRUE(conflict_inputs == (mgr.literal(space.inputs[0], true) &
                                  mgr.literal(space.inputs[1], false)));
  // (d) decompose into two smaller relations (Example 5.5).
  const auto [r0, r1] = r.split(vertex(true, false), 0);
  EXPECT_TRUE(r0.is_well_defined());
  EXPECT_TRUE(r1.is_well_defined());
  // (e) recursively solve and keep the best: the solver does it all.
  const SolveResult solved = BrelSolver().solve(r);
  EXPECT_TRUE(r.is_compatible(solved.function));
}

// Example 4.1 / Def. 4.8: an MISF expressed as the join of per-output
// ISF relations equals the conjunction of their characteristic functions.
TEST_F(PaperExamplesTest, Example41MisfAsJoinOfIsfRelations) {
  const BooleanRelation r = fig1_relation(mgr, space);
  Bdd join = mgr.one();
  for (std::size_t i = 0; i < 2; ++i) {
    const Isf isf = r.project_output(i);
    const Bdd y = mgr.var(space.outputs[i]);
    join = join &
           ((y & (isf.on() | isf.dc())) | ((!y) & (isf.off() | isf.dc())));
  }
  EXPECT_TRUE(join == r.misf().characteristic());
}

// Theorem 5.1: the number of least elements of the semilattice equals
// |IF(B^n x B^m)| = 2^(m 2^n).
TEST_F(PaperExamplesTest, Theorem51LeastElementCount) {
  const BooleanRelation full =
      BooleanRelation::full(mgr, space.inputs, space.outputs);
  // m = 2, n = 2: 2^(2*4) = 256 compatible functions.
  EXPECT_DOUBLE_EQ(count_compatible_functions(full), 256.0);
}

// Lemma 5.1: any proper subset of a functional relation loses
// left-totality.
TEST_F(PaperExamplesTest, Lemma51FunctionalRelationsAreMinimal) {
  MultiFunction f;
  f.outputs = {mgr.var(space.inputs[0]), mgr.var(space.inputs[1])};
  const BooleanRelation full =
      BooleanRelation::full(mgr, space.inputs, space.outputs);
  const BooleanRelation rf =
      full.constrain_with(full.function_characteristic(f));
  ASSERT_TRUE(rf.is_function());
  // Remove any single (x, y) pair: no longer well defined.
  const Bdd pair = mgr.pick_minterm(rf.characteristic()).size() > 0
                       ? [&] {
                           const std::vector<bool> p =
                               mgr.pick_minterm(rf.characteristic());
                           Bdd cube = mgr.one();
                           for (const std::uint32_t v : space.inputs) {
                             cube = cube & mgr.literal(v, p[v]);
                           }
                           for (const std::uint32_t v : space.outputs) {
                             cube = cube & mgr.literal(v, p[v]);
                           }
                           return cube;
                         }()
                       : mgr.zero();
  const BooleanRelation smaller = rf.constrain_with(!pair);
  EXPECT_FALSE(smaller.is_well_defined());
}

// Example 6.1 / Fig. 5: QuickSolver gives all flexibility to the first
// output and produces the unbalanced solution; the best function is not
// found.
TEST_F(PaperExamplesTest, Example61QuickSolverOrderDependence) {
  const BooleanRelation r = fig10_relation(mgr, space);
  const MultiFunction quick = quick_solve(r);
  const Bdd a = mgr.var(space.inputs[0]);
  const Bdd b = mgr.var(space.inputs[1]);
  EXPECT_TRUE(quick.outputs[0].is_one());       // x ⇔ 1
  EXPECT_TRUE(quick.outputs[1] == ((!a) | b));    // y inherits little
  // The balanced optimum exists but QuickSolver cannot see it.
  MultiFunction best;
  best.outputs = {!b, !a};
  EXPECT_TRUE(r.is_compatible(best));
  EXPECT_NE(sum_of_squared_bdd_sizes()(quick),
            sum_of_squared_bdd_sizes()(best));
}

// Sec. 6.3: BREL never flags vertex 11 of Fig. 1 as a potential conflict
// (its image is a cube), only vertex 10.
TEST_F(PaperExamplesTest, Sec63OnlyNonCubeImagesConflict) {
  const BooleanRelation r = fig1_relation(mgr, space);
  const IsfMinimizer minimizer{};
  MultiFunction f;
  f.outputs = {minimizer.minimize(r.project_output(0)),
               minimizer.minimize(r.project_output(1))};
  const Bdd incomp = r.incompatibilities(f);
  const Bdd conflict_inputs = mgr.exists(incomp, space.outputs);
  const Bdd v11 = mgr.literal(space.inputs[0], true) &
                  mgr.literal(space.inputs[1], true);
  EXPECT_TRUE((conflict_inputs & v11).is_zero());
}

// Fig. 8 / Sec. 7.7: the two subrelations after the first split are
// symmetric under the output swap, and their solutions have equal cost.
TEST_F(PaperExamplesTest, Fig8SymmetricBranchesHaveEqualCost) {
  const BooleanRelation r = fig8_relation(mgr, space);
  // Find the conflict and split like the solver would.
  const IsfMinimizer minimizer{};
  MultiFunction f;
  f.outputs = {minimizer.minimize(r.project_output(0)),
               minimizer.minimize(r.project_output(1))};
  const Bdd incomp = r.incompatibilities(f);
  ASSERT_FALSE(incomp.is_zero());
  const Bdd conflicts = mgr.exists(incomp, space.outputs);
  const Cube cube = mgr.shortest_cube(conflicts);
  std::vector<bool> x(mgr.num_vars(), true);
  for (std::size_t v = 0; v < cube.num_vars(); ++v) {
    if (cube.lit(v) == Lit::Zero) {
      x[v] = false;
    }
  }
  std::size_t split_output = r.can_split(x, 0) ? 0 : 1;
  const auto [r0, r1] = r.split(x, split_output);
  // The subrelations are images of each other under the x<->y swap.
  std::vector<Bdd> swap;
  for (std::uint32_t v = 0; v < mgr.num_vars(); ++v) {
    swap.push_back(mgr.var(v));
  }
  std::swap(swap[space.outputs[0]], swap[space.outputs[1]]);
  EXPECT_TRUE(mgr.compose(r0.characteristic(), swap) == r1.characteristic());
  // Equal-cost solutions under a permutation-invariant cost.
  SolverOptions options;
  options.exact = true;
  const SolveResult s0 = BrelSolver(options).solve(r0);
  const SolveResult s1 = BrelSolver(options).solve(r1);
  EXPECT_DOUBLE_EQ(s0.cost, s1.cost);
}

// Sec. 8 / Theorem 8.1 + Property 8.2 on a concrete system, plus the
// Example 8.3 check-by-substitution.
TEST_F(PaperExamplesTest, Sec8EquationSystemRoundTrip) {
  const std::uint32_t first = mgr.add_vars(3);
  const std::vector<std::uint32_t> dep{first, first + 1, first + 2};
  const Bdd a = mgr.var(space.inputs[0]);
  const Bdd b = mgr.var(space.inputs[1]);
  const Bdd x = mgr.var(dep[0]);
  const Bdd y = mgr.var(dep[1]);
  const Bdd z = mgr.var(dep[2]);

  BoolEquationSystem sys(mgr, space.inputs, dep);
  // Mirror of Example 8.1's structure (the printed overbars are not
  // recoverable from the text; see EXPERIMENTS.md).
  sys.add_equation(x | (b & y & !z) | ((!b) & z), a);
  sys.add_equation((x & y) | (x & z) | (y & z), mgr.zero());
  ASSERT_TRUE(sys.is_consistent());

  const SolveResult solved = sys.solve();
  EXPECT_TRUE(sys.is_solution(solved.function));

  // Example 8.3 style: an explicit candidate verified by substitution.
  MultiFunction candidate = solved.function;
  EXPECT_TRUE(sys.is_solution(candidate));
  candidate.outputs[0] = !candidate.outputs[0];
  EXPECT_FALSE(sys.is_solution(candidate));
}

// Sec. 10.1: the mux relation of the worked decomposition example allows
// the expected flexibility at f = 0 and f = 1 vertices.
TEST_F(PaperExamplesTest, Sec101MuxRelationImages) {
  const std::uint32_t x = mgr.add_vars(3);
  const Bdd x1 = mgr.var(x);
  const Bdd x2 = mgr.var(x + 1);
  const Bdd x3 = mgr.var(x + 2);
  const Bdd f = (x1 & (x2 | x3)) | ((!x1) & !x2 & !x3);
  const std::uint32_t yv = mgr.add_vars(3);
  const std::vector<std::uint32_t> abc{yv, yv + 1, yv + 2};
  const Bdd gate = mux_gate(mgr.var(yv), mgr.var(yv + 1), mgr.var(yv + 2));
  const BooleanRelation r =
      decomposition_relation(f, {x, x + 1, x + 2}, gate, abc);
  // Where f = 1 the image is {y : mux(y) = 1} (4 vertices); where f = 0
  // the complement set (4 vertices); the relation is never functional.
  std::vector<bool> v(mgr.num_vars(), false);
  v[x] = true;
  v[x + 1] = true;  // f(110) = 1
  EXPECT_EQ(r.image_of(v).size(), 4u);
  v[x] = false;
  v[x + 1] = false;  // f(000) = 1 as well (!x1 !x2 !x3 term)
  EXPECT_EQ(r.image_of(v).size(), 4u);
  v[x + 1] = true;   // f(010) = 0
  EXPECT_EQ(r.image_of(v).size(), 4u);
}

}  // namespace
}  // namespace brel
