// Property-based solver tests over randomized relations: compatibility of
// every solver's output, exactness of exact mode against enumeration,
// budget monotonicity, split-partition invariants, and the new cost
// functions / exploration orders.

#include <gtest/gtest.h>

#include <random>

#include "brel/solver.hpp"
#include "gyocro/gyocro.hpp"
#include "relation/enumeration.hpp"

namespace brel {
namespace {

/// Random well-defined relation over n inputs / m outputs with mixed
/// cube and non-cube flexibility.
BooleanRelation random_relation(BddManager& mgr, std::mt19937& rng,
                                std::size_t n, std::size_t m,
                                std::vector<std::uint32_t>& inputs,
                                std::vector<std::uint32_t>& outputs) {
  const std::uint32_t first = mgr.add_vars(static_cast<std::uint32_t>(n + m));
  inputs.clear();
  outputs.clear();
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(first + static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < m; ++i) {
    outputs.push_back(first + static_cast<std::uint32_t>(n + i));
  }
  const std::uint64_t out_space = std::uint64_t{1} << m;
  Bdd chi = mgr.zero();
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
    Bdd vertex = mgr.one();
    for (std::size_t i = 0; i < n; ++i) {
      vertex = vertex & mgr.literal(inputs[i], ((x >> i) & 1u) != 0);
    }
    // Non-empty random image.
    Bdd image = mgr.zero();
    const std::size_t count = 1 + rng() % 3;
    for (std::size_t k = 0; k < count; ++k) {
      const std::uint64_t y = rng() % out_space;
      Bdd ycube = mgr.one();
      for (std::size_t i = 0; i < m; ++i) {
        ycube = ycube & mgr.literal(outputs[i], ((y >> i) & 1u) != 0);
      }
      image = image | ycube;
    }
    chi = chi | (vertex & image);
  }
  return BooleanRelation(mgr, inputs, outputs, std::move(chi));
}

class SolverPropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SolverPropertyTest, AllSolversReturnCompatibleFunctions) {
  std::mt19937 rng{GetParam()};
  for (int iter = 0; iter < 6; ++iter) {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r =
        random_relation(mgr, rng, 3, 2, inputs, outputs);
    EXPECT_TRUE(r.is_compatible(quick_solve(r)));
    EXPECT_TRUE(r.is_compatible(BrelSolver().solve(r).function));
    EXPECT_TRUE(r.is_compatible(GyocroSolver().solve(r).function));
  }
}

TEST_P(SolverPropertyTest, ExactModeMatchesEnumeratedOptimum) {
  std::mt19937 rng{GetParam() * 97 + 13};
  for (int iter = 0; iter < 4; ++iter) {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r =
        random_relation(mgr, rng, 2, 2, inputs, outputs);
    SolverOptions options;
    options.exact = true;
    options.cost = sum_of_bdd_sizes();
    const SolveResult result = BrelSolver(options).solve(r);
    const ExactOptimum truth = exact_optimum(r, sum_of_bdd_sizes());
    EXPECT_DOUBLE_EQ(result.cost, truth.cost);
  }
}

TEST_P(SolverPropertyTest, HeuristicNeverBeatsExact) {
  std::mt19937 rng{GetParam() * 31 + 7};
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r = random_relation(mgr, rng, 2, 2, inputs, outputs);
  SolverOptions heuristic;
  heuristic.max_relations = 5;
  SolverOptions exact;
  exact.exact = true;
  const double h = BrelSolver(heuristic).solve(r).cost;
  const double e = BrelSolver(exact).solve(r).cost;
  EXPECT_GE(h, e);
}

TEST_P(SolverPropertyTest, SplitPartitionInvariantHoldsOnRandomRelations) {
  std::mt19937 rng{GetParam() * 61 + 3};
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r = random_relation(mgr, rng, 3, 2, inputs, outputs);
  // Find any splittable (x, i).
  for (std::size_t i = 0; i < r.num_outputs(); ++i) {
    const Isf isf = r.project_output(i);
    if (isf.dc().is_zero()) {
      continue;
    }
    const std::vector<bool> x = mgr.pick_minterm(isf.dc());
    ASSERT_TRUE(r.can_split(x, i));
    const auto [r0, r1] = r.split(x, i);
    // Property 5.4: IF(R) is partitioned.
    EXPECT_DOUBLE_EQ(count_compatible_functions(r),
                     count_compatible_functions(r0) +
                         count_compatible_functions(r1));
    // Theorem 5.2: both halves well defined and strictly smaller.
    EXPECT_TRUE(r0.is_well_defined());
    EXPECT_TRUE(r1.is_well_defined());
    EXPECT_TRUE(r0.characteristic().subset_of(r.characteristic()));
    EXPECT_TRUE(r1.characteristic().subset_of(r.characteristic()));
    return;
  }
  GTEST_SKIP() << "relation happened to be functional";
}

TEST_P(SolverPropertyTest, DfsAndBfsBothReturnCompatibleSolutions) {
  std::mt19937 rng{GetParam() * 17 + 29};
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r = random_relation(mgr, rng, 3, 2, inputs, outputs);
  for (const ExplorationOrder order :
       {ExplorationOrder::BreadthFirst, ExplorationOrder::DepthFirst,
        ExplorationOrder::BestFirst}) {
    SolverOptions options;
    options.order = order;
    options.max_relations = 8;
    const SolveResult result = BrelSolver(options).solve(r);
    EXPECT_TRUE(r.is_compatible(result.function));
  }
}

TEST_P(SolverPropertyTest, TimeoutStillYieldsASolution) {
  std::mt19937 rng{GetParam() * 41 + 11};
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r = random_relation(mgr, rng, 4, 3, inputs, outputs);
  SolverOptions options;
  options.max_relations = 1u << 20;
  options.timeout = std::chrono::milliseconds{1};
  const SolveResult result = BrelSolver(options).solve(r);
  EXPECT_TRUE(r.is_compatible(result.function));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(CostFunctionExtrasTest, SupportBalanceCost) {
  BddManager mgr{4};
  MultiFunction balanced;
  balanced.outputs = {mgr.var(0), mgr.var(1)};
  MultiFunction skewed;
  skewed.outputs = {mgr.var(0) & mgr.var(1) & mgr.var(2), mgr.one()};
  // Same manager, same total size ordering may differ, but the balance
  // penalty must favour equal supports.
  const CostFunction cost = support_balance_cost(10.0);
  const double c_balanced = cost(balanced);
  const double c_skewed = cost(skewed);
  EXPECT_LT(c_balanced, c_skewed);
  // Lambda = 0 degenerates to the plain size sum.
  EXPECT_DOUBLE_EQ(support_balance_cost(0.0)(balanced),
                   sum_of_bdd_sizes()(balanced));
}

TEST(CostFunctionExtrasTest, MaxBddSizeCost) {
  BddManager mgr{4};
  MultiFunction f;
  f.outputs = {mgr.var(0) & mgr.var(1), mgr.one()};
  EXPECT_DOUBLE_EQ(max_bdd_size_cost()(f), 3.0);
  MultiFunction empty;
  EXPECT_DOUBLE_EQ(max_bdd_size_cost()(empty), 0.0);
}

TEST(ExplorationOrderTest, DfsDivesBfsSpreads) {
  // On the Fig-10-like relation both orders find solutions; with a budget
  // of 3, BFS pops the root and its two children, DFS pops root, child,
  // grandchild.  We only check the documented guarantee: compatibility
  // plus stats accounting.
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  std::mt19937 rng{99};
  const BooleanRelation r = random_relation(mgr, rng, 3, 2, inputs, outputs);
  for (const ExplorationOrder order :
       {ExplorationOrder::BreadthFirst, ExplorationOrder::DepthFirst,
        ExplorationOrder::BestFirst}) {
    SolverOptions options;
    options.order = order;
    options.max_relations = 3;
    const SolveResult result = BrelSolver(options).solve(r);
    EXPECT_LE(result.stats.relations_explored, 3u);
    EXPECT_TRUE(r.is_compatible(result.function));
  }
}

}  // namespace
}  // namespace brel
