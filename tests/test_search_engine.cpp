// Tests for the pluggable search-engine layer: frontier strategy
// semantics (FIFO / LIFO / best-first ordering, capacity, move-only
// items), the subproblem cache (in-tree no-duplicate invariant and
// cross-solve dedup), the SearchEngine driver, and strategy-independence
// of exact mode.

#include <gtest/gtest.h>

#include <limits>
#include <type_traits>

#include "benchgen/paper_relations.hpp"
#include "benchgen/relation_suite.hpp"
#include "brel/search.hpp"
#include "relation/enumeration.hpp"

namespace brel {
namespace {

// Items move through the frontier; copying a subproblem would duplicate
// the whole characteristic-BDD handle chain for nothing.
static_assert(!std::is_copy_constructible_v<Subproblem>);
static_assert(std::is_nothrow_move_constructible_v<Subproblem>);

class FrontierTest : public ::testing::Test {
 protected:
  BddManager mgr{4};
  BooleanRelation rel = BooleanRelation::full(mgr, {0, 1}, {2, 3});

  Subproblem item(std::size_t depth, double priority = 0.0) {
    Subproblem sub{rel, depth};
    sub.priority = priority;
    return sub;
  }
};

TEST_F(FrontierTest, FifoPopsInInsertionOrder) {
  BoundedFifoFrontier fifo{100};
  EXPECT_TRUE(fifo.empty());
  for (std::size_t d : {1u, 2u, 3u}) {
    EXPECT_TRUE(fifo.try_push(item(d)));
  }
  EXPECT_EQ(fifo.size(), 3u);
  EXPECT_EQ(fifo.pop().depth, 1u);
  EXPECT_EQ(fifo.pop().depth, 2u);
  EXPECT_EQ(fifo.pop().depth, 3u);
  EXPECT_TRUE(fifo.empty());
}

TEST_F(FrontierTest, LifoPopsInReverseOrder) {
  LifoFrontier lifo{100};
  for (std::size_t d : {1u, 2u, 3u}) {
    EXPECT_TRUE(lifo.try_push(item(d)));
  }
  EXPECT_EQ(lifo.pop().depth, 3u);
  EXPECT_EQ(lifo.pop().depth, 2u);
  EXPECT_EQ(lifo.pop().depth, 1u);
}

TEST_F(FrontierTest, BestFirstPopsCheapestWithFifoTieBreak) {
  BestFirstFrontier best{100};
  EXPECT_TRUE(best.wants_priority());
  EXPECT_TRUE(best.try_push(item(1, 5.0)));
  EXPECT_TRUE(best.try_push(item(2, 1.0)));
  EXPECT_TRUE(best.try_push(item(3, 5.0)));
  EXPECT_TRUE(best.try_push(item(4, 3.0)));
  EXPECT_EQ(best.pop().depth, 2u);  // priority 1
  EXPECT_EQ(best.pop().depth, 4u);  // priority 3
  EXPECT_EQ(best.pop().depth, 1u);  // priority 5, inserted first
  EXPECT_EQ(best.pop().depth, 3u);  // priority 5, inserted second
}

TEST_F(FrontierTest, CapacityBoundsPushesButNotTheRoot) {
  for (const ExplorationOrder order :
       {ExplorationOrder::BreadthFirst, ExplorationOrder::DepthFirst,
        ExplorationOrder::BestFirst}) {
    const auto frontier = make_frontier(order, 2);
    EXPECT_TRUE(frontier->try_push(item(1)));
    EXPECT_TRUE(frontier->try_push(item(2)));
    EXPECT_FALSE(frontier->try_push(item(3)));  // full
    EXPECT_EQ(frontier->size(), 2u);
    frontier->push_root(item(0));  // the root bypasses the bound
    EXPECT_EQ(frontier->size(), 3u);
  }
}

TEST_F(FrontierTest, FactoryMakesMatchingStrategy) {
  EXPECT_NE(dynamic_cast<BoundedFifoFrontier*>(
                make_frontier(ExplorationOrder::BreadthFirst, 1).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<LifoFrontier*>(
                make_frontier(ExplorationOrder::DepthFirst, 1).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<BestFirstFrontier*>(
                make_frontier(ExplorationOrder::BestFirst, 1).get()),
            nullptr);
}

class SearchEngineTest : public ::testing::Test {
 protected:
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);
};

TEST_F(SearchEngineTest, AllStrategiesFindCompatibleSolutionsOnPaperSuite) {
  for (const BooleanRelation& r : {fig1_relation(mgr, space),
                                   fig10_relation(mgr, space),
                                   fig8_relation(mgr, space)}) {
    for (const ExplorationOrder order :
         {ExplorationOrder::BreadthFirst, ExplorationOrder::DepthFirst,
          ExplorationOrder::BestFirst}) {
      SolverOptions options;
      options.order = order;
      options.max_relations = 20;
      const SolveResult result = BrelSolver(options).solve(r);
      EXPECT_TRUE(r.is_compatible(result.function));
      EXPECT_GT(result.stats.relations_explored, 0u);
    }
  }
}

TEST_F(SearchEngineTest, ExactModeCostIsStrategyIndependent) {
  for (const BooleanRelation& r : {fig1_relation(mgr, space),
                                   fig10_relation(mgr, space),
                                   fig8_relation(mgr, space)}) {
    const ExactOptimum truth = exact_optimum(r, sum_of_bdd_sizes());
    for (const ExplorationOrder order :
         {ExplorationOrder::BreadthFirst, ExplorationOrder::DepthFirst,
          ExplorationOrder::BestFirst}) {
      SolverOptions options;
      options.exact = true;
      options.cost = sum_of_bdd_sizes();
      options.order = order;
      const SolveResult result = BrelSolver(options).solve(r);
      EXPECT_DOUBLE_EQ(result.cost, truth.cost);
      EXPECT_TRUE(r.is_compatible(result.function));
    }
  }
}

TEST_F(SearchEngineTest, BestFirstEscapesQuickSolverLocalMinimum) {
  // Fig. 10: like BFS/DFS, the cost-directed order must reach the 2-cube
  // optimum the ERI paradigm cannot.
  const BooleanRelation r = fig10_relation(mgr, space);
  SolverOptions options;
  options.cost = sum_of_squared_bdd_sizes();
  options.order = ExplorationOrder::BestFirst;
  const SolveResult result = BrelSolver(options).solve(r);
  EXPECT_DOUBLE_EQ(result.cost, 8.0);
}

TEST_F(SearchEngineTest, BestFirstPrecomputesCandidatesAtPushTime) {
  // In exact mode every strategy expands the same finite tree (no
  // order-dependent cost pruning), so split counts match; best-first
  // never minimizes more than once per relation (terminals are priced
  // via extract_function, not the projections).
  const BooleanRelation r = fig10_relation(mgr, space);
  SolverOptions bfs;
  bfs.exact = true;
  SolverOptions best = bfs;
  best.order = ExplorationOrder::BestFirst;
  const SolveResult a = BrelSolver(bfs).solve(r);
  const SolveResult b = BrelSolver(best).solve(r);
  EXPECT_EQ(a.stats.splits, b.stats.splits);
  EXPECT_GE(b.stats.misf_minimizations, a.stats.misf_minimizations);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST_F(SearchEngineTest, EngineMatchesSolverFacade) {
  const BooleanRelation r = fig10_relation(mgr, space);
  SolverOptions options;
  options.max_relations = 25;
  SearchEngine engine(r, options);
  const SolveResult direct = engine.run();
  const SolveResult facade = BrelSolver(options).solve(r);
  EXPECT_DOUBLE_EQ(direct.cost, facade.cost);
  EXPECT_EQ(direct.stats.relations_explored,
            facade.stats.relations_explored);
  EXPECT_EQ(engine.context().stats.relations_explored,
            direct.stats.relations_explored);
}

TEST_F(SearchEngineTest, InfiniteCostStillReturnsCompatibleFunction) {
  // The QuickSolver seed must survive even a cost function that maps
  // every candidate to +inf: solve() promises a compatible function, not
  // an empty one.
  const BooleanRelation r = fig10_relation(mgr, space);
  SolverOptions options;
  options.cost = [](const MultiFunction&) {
    return std::numeric_limits<double>::infinity();
  };
  const SolveResult result = BrelSolver(options).solve(r);
  EXPECT_EQ(result.function.num_outputs(), r.num_outputs());
  EXPECT_TRUE(r.is_compatible(result.function));
}

TEST_F(SearchEngineTest, EngineOutlivesConstructorArguments) {
  // The engine copies its root and options; a temporary SolverOptions
  // must not dangle (the ASan CI job would flag it if it did).
  const BooleanRelation r = fig10_relation(mgr, space);
  SearchEngine engine(r, SolverOptions{});
  const SolveResult result = engine.run();
  EXPECT_TRUE(r.is_compatible(result.function));
}

TEST_F(SearchEngineTest, EngineRejectsIllDefinedRelation) {
  const BooleanRelation r = fig1_relation(mgr, space);
  const BooleanRelation broken = r.constrain_with(
      !(mgr.literal(space.inputs[0], true) &
        mgr.literal(space.inputs[1], false)));
  EXPECT_THROW(SearchEngine(broken, SolverOptions{}), std::invalid_argument);
}

// ------------------------------------------------------ subproblem cache

TEST(SubproblemCacheTest, DetectsExactDuplicatesOnly) {
  BddManager mgr{3};
  SubproblemCache cache;
  const Bdd f = mgr.var(0) & mgr.var(1);
  EXPECT_FALSE(cache.seen_before_or_insert(f));
  EXPECT_TRUE(cache.seen_before_or_insert(f));
  EXPECT_TRUE(cache.contains(f));
  EXPECT_FALSE(cache.contains(mgr.var(2)));
  EXPECT_FALSE(cache.seen_before_or_insert(mgr.var(0) & mgr.var(2)));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.probes(), 3u);
}

TEST(SubproblemCacheTest, CapacityStopsInsertionNotProbing) {
  BddManager mgr{4};
  SubproblemCache cache{2};
  EXPECT_FALSE(cache.seen_before_or_insert(mgr.var(0)));
  EXPECT_FALSE(cache.seen_before_or_insert(mgr.var(1)));
  EXPECT_FALSE(cache.seen_before_or_insert(mgr.var(2)));  // full: dropped
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.seen_before_or_insert(mgr.var(2)));  // still unseen
  EXPECT_TRUE(cache.seen_before_or_insert(mgr.var(0)));   // cached ones hit
}

TEST(SubproblemCacheTest, InTreeDuplicatesAreImpossible) {
  // Property 5.4 corollary: Split partitions the image at the split
  // vertex, so no two nodes of one solve tree share a characteristic
  // function.  A cold solve must therefore never dedup anything — on the
  // whole benchmark suite, under every strategy.
  for (const RelationBenchmark& bench : relation_suite()) {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r =
        make_benchmark_relation(mgr, bench, inputs, outputs);
    for (const ExplorationOrder order :
         {ExplorationOrder::BreadthFirst, ExplorationOrder::DepthFirst,
          ExplorationOrder::BestFirst}) {
      SolverOptions options;
      options.order = order;
      options.max_relations = 30;
      options.use_subproblem_cache = true;
      const SolveResult result = BrelSolver(options).solve(r);
      EXPECT_EQ(result.stats.pruned_by_cache, 0u)
          << bench.name << ": in-tree duplicate — Property 5.4 violated";
    }
  }
}

TEST(SubproblemCacheTest, PrivateCacheLeavesResultsUntouched) {
  // With a fresh per-solve cache nothing can hit, so enabling the flag
  // must not change any outcome.
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);
  for (const BooleanRelation& r : {fig1_relation(mgr, space),
                                   fig10_relation(mgr, space),
                                   fig8_relation(mgr, space)}) {
    SolverOptions plain;
    plain.max_relations = 40;
    SolverOptions cached = plain;
    cached.use_subproblem_cache = true;
    const SolveResult a = BrelSolver(plain).solve(r);
    const SolveResult b = BrelSolver(cached).solve(r);
    EXPECT_DOUBLE_EQ(a.cost, b.cost);
    EXPECT_EQ(a.stats.relations_explored, b.stats.relations_explored);
    EXPECT_EQ(a.stats.splits, b.stats.splits);
  }
}

TEST(SubproblemCacheTest, ImprovementsToPresentEntriesLandAtCapacity) {
  // The capacity bound stops *insertions*, not memo improvements: a
  // better solution discovered after the cache fills must still update
  // the entries that are present (a full cache that silently froze its
  // memos would keep offering stale, costlier solutions on every hit).
  BddManager mgr{4};
  SubproblemCache cache{1};
  const Bdd inside = mgr.var(0);
  const Bdd outside = mgr.var(1);
  EXPECT_FALSE(cache.seen_before_or_insert(inside));
  EXPECT_FALSE(cache.seen_before_or_insert(outside));  // full: dropped
  ASSERT_EQ(cache.size(), 1u);

  MultiFunction f;
  f.outputs.push_back(mgr.var(2));
  const detail::Edge chain[] = {inside.raw_edge(), outside.raw_edge()};
  cache.improve(chain, f, 10.0);
  const CachedSolution* entry = cache.seen_before_or_insert(inside);
  ASSERT_TRUE(entry != nullptr && entry->has_solution());
  EXPECT_DOUBLE_EQ(entry->cost, 10.0);

  // The better solution found later lands on the present entry...
  cache.improve(chain, f, 4.0);
  entry = cache.seen_before_or_insert(inside);
  ASSERT_TRUE(entry != nullptr);
  EXPECT_DOUBLE_EQ(entry->cost, 4.0);
  // ...a worse one does not regress it...
  cache.improve(chain, f, 7.0);
  entry = cache.seen_before_or_insert(inside);
  ASSERT_TRUE(entry != nullptr);
  EXPECT_DOUBLE_EQ(entry->cost, 4.0);
  // ...and the dropped edge stays unmemoized (skipped, not resurrected).
  EXPECT_EQ(cache.seen_before_or_insert(outside), nullptr);
}

TEST(SubproblemCacheTest, BindRejectsMismatchedFingerprints) {
  SubproblemCache cache;
  const CacheFingerprint size_fp{"size", false, {0, 1}, {2, 3}};
  cache.bind(size_fp);
  cache.bind(size_fp);  // idempotent re-bind of the same configuration
  // Different objective, mode, or variable spaces: all rejected.
  EXPECT_THROW(cache.bind(CacheFingerprint{"size2", false, {0, 1}, {2, 3}}),
               std::invalid_argument);
  EXPECT_THROW(cache.bind(CacheFingerprint{"size", true, {0, 1}, {2, 3}}),
               std::invalid_argument);
  EXPECT_THROW(cache.bind(CacheFingerprint{"size", false, {0, 1, 2}, {3}}),
               std::invalid_argument);
  // rebind_or_clear recycles instead: entries drop, stamp moves on.
  BddManager mgr{4};
  (void)cache.seen_before_or_insert(mgr.var(0));
  EXPECT_EQ(cache.size(), 1u);
  cache.rebind_or_clear(CacheFingerprint{"size2", false, {0, 1}, {2, 3}});
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_THROW(cache.bind(size_fp), std::invalid_argument);
}

TEST(SubproblemCacheTest, SharingAcrossCostFunctionsIsRejected) {
  // The wrong-pruning scenario the fingerprint prevents: warm a shared
  // cache under the "size" objective, then re-solve under "size2".
  // Without the stamp, the warm run would prune its subtrees and offer
  // the size-optimal memos — whose recorded costs are measured in a
  // different unit — as size2 incumbents, silently returning a function
  // that no size2 exploration would have chosen.  With the stamp the
  // incompatible reuse is an error at engine construction.
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);
  const BooleanRelation r = fig10_relation(mgr, space);
  SolverOptions options;
  options.max_relations = 40;
  options.cost = sum_of_bdd_sizes();
  options.subproblem_cache = std::make_shared<SubproblemCache>();
  const SolveResult cold = BrelSolver(options).solve(r);
  EXPECT_TRUE(r.is_compatible(cold.function));

  SolverOptions mismatched = options;
  mismatched.cost = sum_of_squared_bdd_sizes();
  EXPECT_THROW((void)BrelSolver(mismatched).solve(r), std::invalid_argument);
  // Same for a mode flip: exact exploration must not be pruned by memos
  // of a budget-limited run.
  SolverOptions exact_reuse = options;
  exact_reuse.exact = true;
  EXPECT_THROW((void)BrelSolver(exact_reuse).solve(r), std::invalid_argument);
  // And for a different relation over different spaces (the raw-edge
  // keys would alias — e.g. constant characteristics — so the spaces are
  // part of the stamp).
  BooleanRelation other =
      BooleanRelation::full(mgr, {space.inputs[0]}, {space.outputs[0]});
  EXPECT_THROW((void)BrelSolver(options).solve(other), std::invalid_argument);

  // The legitimate sharing pattern still works after the failed binds.
  const SolveResult warm = BrelSolver(options).solve(r);
  EXPECT_DOUBLE_EQ(warm.cost, cold.cost);
  EXPECT_GT(warm.stats.pruned_by_cache, 0u);
}

TEST(SubproblemCacheTest, AnonymousCostFunctionsNeverFalselyMatch) {
  // Two independently written lambdas could compute different costs, so
  // they get distinct identities; copies of one CostFunction (the normal
  // way options are reused) share theirs.
  const CostFunction a = [](const MultiFunction&) { return 1.0; };
  const CostFunction b = [](const MultiFunction&) { return 1.0; };
  EXPECT_NE(a.id(), b.id());
  const CostFunction a_copy = a;  // NOLINT(performance-unnecessary-copy)
  EXPECT_EQ(a.id(), a_copy.id());
  EXPECT_EQ(sum_of_bdd_sizes().id(), sum_of_bdd_sizes().id());
}

TEST(SubproblemCacheTest, SharedCacheDedupsAcrossSolves) {
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);
  const BooleanRelation r = fig10_relation(mgr, space);
  SolverOptions options;
  options.max_relations = 40;
  options.subproblem_cache = std::make_shared<SubproblemCache>();
  const SolveResult cold = BrelSolver(options).solve(r);
  EXPECT_EQ(cold.stats.pruned_by_cache, 0u);
  const SolveResult warm = BrelSolver(options).solve(r);
  // The warm run prunes re-encountered subtrees...
  EXPECT_GT(warm.stats.pruned_by_cache, 0u);
  EXPECT_LT(warm.stats.relations_explored, cold.stats.relations_explored);
  // ...and each pruned subtree offers its memoized best, so the warm
  // result matches first-run quality at a fraction of the exploration.
  EXPECT_DOUBLE_EQ(warm.cost, cold.cost);
  EXPECT_TRUE(r.is_compatible(warm.function));
  EXPECT_GT(options.subproblem_cache->hits(), 0u);
}

}  // namespace
}  // namespace brel
