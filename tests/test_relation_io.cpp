// Tests for the .br-style relation text format.

#include <gtest/gtest.h>

#include "benchgen/paper_relations.hpp"
#include "relation/relation_io.hpp"

namespace brel {
namespace {

TEST(RelationIoTest, ParseSimpleRelation) {
  BddManager mgr{0};
  const BooleanRelation r = read_relation(mgr,
                                          "# Fig. 1 relation\n"
                                          ".i 2\n"
                                          ".o 2\n"
                                          ".r\n"
                                          "00 00\n"
                                          "01 01\n"
                                          "10 00 11\n"
                                          "11 10 11\n"
                                          ".e\n");
  EXPECT_EQ(r.num_inputs(), 2u);
  EXPECT_EQ(r.num_outputs(), 2u);
  EXPECT_TRUE(r.is_well_defined());
  std::vector<bool> v(mgr.num_vars(), false);
  v[r.inputs()[0]] = true;
  EXPECT_EQ(r.image_of(v), (std::set<std::uint64_t>{0b00, 0b11}));
}

TEST(RelationIoTest, ParsedEqualsProgrammatic) {
  BddManager mgr{0};
  const RelationSpace space = make_space(mgr, 2, 2);
  const BooleanRelation built = fig1_relation(mgr, space);
  const BooleanRelation parsed = read_relation(mgr,
                                               ".i 2\n.o 2\n.r\n"
                                               "00 00\n01 01\n"
                                               "10 00 11\n11 10 11\n.e\n");
  EXPECT_EQ(built.to_table(), parsed.to_table());
}

TEST(RelationIoTest, CubesOnBothSides) {
  BddManager mgr{0};
  // '-' expands on the input side (both vertices share the image) and on
  // the output side (a cube of allowed outputs).
  const BooleanRelation r =
      read_relation(mgr, ".i 2\n.o 2\n.r\n-0 1-\n-1 00\n.e\n");
  EXPECT_TRUE(r.is_well_defined());
  std::vector<bool> v(mgr.num_vars(), false);
  EXPECT_EQ(r.image_of(v), (std::set<std::uint64_t>{0b01, 0b11}));
  v[r.inputs()[1]] = true;
  EXPECT_EQ(r.image_of(v), (std::set<std::uint64_t>{0b00}));
}

TEST(RelationIoTest, RowsAccumulateByUnion) {
  BddManager mgr{0};
  const BooleanRelation r =
      read_relation(mgr, ".i 1\n.o 1\n.r\n0 0\n0 1\n1 1\n.e\n");
  std::vector<bool> v(mgr.num_vars(), false);
  EXPECT_EQ(r.image_of(v).size(), 2u);
}

TEST(RelationIoTest, WriteReadRoundTrip) {
  BddManager mgr{0};
  const RelationSpace space = make_space(mgr, 2, 2);
  for (const BooleanRelation& r : {fig1_relation(mgr, space),
                                   fig10_relation(mgr, space),
                                   fig8_relation(mgr, space)}) {
    const std::string text = write_relation(r);
    BddManager fresh{0};
    const BooleanRelation parsed = read_relation(fresh, text);
    EXPECT_EQ(parsed.to_table(), r.to_table());
  }
}

TEST(RelationIoTest, PartialRelationRoundTrip) {
  BddManager mgr{0};
  // Vertex 1 has no image: written output skips it, parsing brings back
  // the same non-well-defined relation.
  const BooleanRelation r =
      read_relation(mgr, ".i 1\n.o 1\n.r\n0 1\n.e\n");
  EXPECT_FALSE(r.is_well_defined());
  BddManager fresh{0};
  const BooleanRelation again = read_relation(fresh, write_relation(r));
  EXPECT_FALSE(again.is_well_defined());
  EXPECT_EQ(again.to_table(), r.to_table());
}

TEST(RelationIoTest, MalformedInputsThrowWithLineNumbers) {
  BddManager mgr{0};
  const auto expect_error = [&](const std::string& text,
                                const std::string& fragment) {
    try {
      (void)read_relation(mgr, text);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find(fragment), std::string::npos)
          << error.what();
    }
  };
  expect_error(".i 0\n.o 1\n.r\n.e\n", "bad or duplicate .i");
  expect_error(".i 1\n.i 1\n.o 1\n.r\n.e\n", "duplicate");
  expect_error(".o 1\n.r\n.e\n", ".r requires .i and .o");
  expect_error(".i 1\n.o 1\n0 1\n", "row before .r");
  expect_error(".i 1\n.o 1\n.r\n00 1\n.e\n", "input cube width");
  expect_error(".i 1\n.o 1\n.r\n0 11\n.e\n", "output cube width");
  expect_error(".i 1\n.o 1\n.r\n0\n.e\n", "without output cubes");
  expect_error(".i 1\n.o 1\n.r\nx 1\n.e\n", "bad input cube");
  expect_error(".i 1\n.o 1\n.r\n0 1\n", "missing .e");
  expect_error(".i 1\n.o 1\n.r\n.e\n0 1\n", "after .e");
}

}  // namespace
}  // namespace brel
