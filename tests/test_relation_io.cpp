// Tests for the .br-style relation text format.

#include <gtest/gtest.h>

#include "benchgen/paper_relations.hpp"
#include "relation/relation_io.hpp"

namespace brel {
namespace {

TEST(RelationIoTest, ParseSimpleRelation) {
  BddManager mgr{0};
  const BooleanRelation r = read_relation(mgr,
                                          "# Fig. 1 relation\n"
                                          ".i 2\n"
                                          ".o 2\n"
                                          ".r\n"
                                          "00 00\n"
                                          "01 01\n"
                                          "10 00 11\n"
                                          "11 10 11\n"
                                          ".e\n");
  EXPECT_EQ(r.num_inputs(), 2u);
  EXPECT_EQ(r.num_outputs(), 2u);
  EXPECT_TRUE(r.is_well_defined());
  std::vector<bool> v(mgr.num_vars(), false);
  v[r.inputs()[0]] = true;
  EXPECT_EQ(r.image_of(v), (std::set<std::uint64_t>{0b00, 0b11}));
}

TEST(RelationIoTest, ParsedEqualsProgrammatic) {
  BddManager mgr{0};
  const RelationSpace space = make_space(mgr, 2, 2);
  const BooleanRelation built = fig1_relation(mgr, space);
  const BooleanRelation parsed = read_relation(mgr,
                                               ".i 2\n.o 2\n.r\n"
                                               "00 00\n01 01\n"
                                               "10 00 11\n11 10 11\n.e\n");
  EXPECT_EQ(built.to_table(), parsed.to_table());
}

TEST(RelationIoTest, CubesOnBothSides) {
  BddManager mgr{0};
  // '-' expands on the input side (both vertices share the image) and on
  // the output side (a cube of allowed outputs).
  const BooleanRelation r =
      read_relation(mgr, ".i 2\n.o 2\n.r\n-0 1-\n-1 00\n.e\n");
  EXPECT_TRUE(r.is_well_defined());
  std::vector<bool> v(mgr.num_vars(), false);
  EXPECT_EQ(r.image_of(v), (std::set<std::uint64_t>{0b01, 0b11}));
  v[r.inputs()[1]] = true;
  EXPECT_EQ(r.image_of(v), (std::set<std::uint64_t>{0b00}));
}

TEST(RelationIoTest, RowsAccumulateByUnion) {
  BddManager mgr{0};
  const BooleanRelation r =
      read_relation(mgr, ".i 1\n.o 1\n.r\n0 0\n0 1\n1 1\n.e\n");
  std::vector<bool> v(mgr.num_vars(), false);
  EXPECT_EQ(r.image_of(v).size(), 2u);
}

TEST(RelationIoTest, WriteReadRoundTrip) {
  BddManager mgr{0};
  const RelationSpace space = make_space(mgr, 2, 2);
  for (const BooleanRelation& r : {fig1_relation(mgr, space),
                                   fig10_relation(mgr, space),
                                   fig8_relation(mgr, space)}) {
    const std::string text = write_relation(r);
    BddManager fresh{0};
    const BooleanRelation parsed = read_relation(fresh, text);
    EXPECT_EQ(parsed.to_table(), r.to_table());
  }
}

TEST(RelationIoTest, PartialRelationRoundTrip) {
  BddManager mgr{0};
  // Vertex 1 has no image: written output skips it, parsing brings back
  // the same non-well-defined relation.
  const BooleanRelation r =
      read_relation(mgr, ".i 1\n.o 1\n.r\n0 1\n.e\n");
  EXPECT_FALSE(r.is_well_defined());
  BddManager fresh{0};
  const BooleanRelation again = read_relation(fresh, write_relation(r));
  EXPECT_FALSE(again.is_well_defined());
  EXPECT_EQ(again.to_table(), r.to_table());
}

TEST(RelationIoTest, MalformedInputsThrowWithLineNumbers) {
  BddManager mgr{0};
  const auto expect_error = [&](const std::string& text,
                                const std::string& fragment) {
    try {
      (void)read_relation(mgr, text);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find(fragment), std::string::npos)
          << error.what();
    }
  };
  expect_error(".i 0\n.o 1\n.r\n.e\n", "bad or duplicate .i");
  expect_error(".i 1\n.i 1\n.o 1\n.r\n.e\n", "duplicate");
  expect_error(".o 1\n.r\n.e\n", ".r requires .i and .o");
  expect_error(".i 1\n.o 1\n0 1\n", "row before .r");
  expect_error(".i 1\n.o 1\n.r\n00 1\n.e\n", "input cube width");
  expect_error(".i 1\n.o 1\n.r\n0 11\n.e\n", "output cube width");
  expect_error(".i 1\n.o 1\n.r\n0\n.e\n", "without output cubes");
  expect_error(".i 1\n.o 1\n.r\nx 1\n.e\n", "bad input cube");
  expect_error(".i 1\n.o 1\n.r\n0 1\n", "missing .e");
  expect_error(".i 1\n.o 1\n.r\n.e\n0 1\n", "after .e");
}

TEST(RelationIoTest, MalformedBddBodiesAlwaysThrowNeverUB) {
  // Hardening contract for the compact `.bdd` path (and the hostile-
  // input surface of the pool's --serve mode): every malformed body —
  // truncation, out-of-range variable ranks, references to unseen
  // nodes, sign/garbage smuggling — is a clean std::invalid_argument,
  // never an out-of-bounds read or a silently mis-wired relation.  The
  // ASan/UBSan CI job runs this table too.
  struct MalformedCase {
    const char* name;
    const char* text;
    const char* fragment;  ///< expected substring of the error
  };
  const MalformedCase cases[] = {
      {"truncated node list", ".i 1\n.o 1\n.bdd 2\n0 2 3\n", "truncated"},
      {"missing .root line", ".i 1\n.o 1\n.bdd 1\n1 0 1\n", ".root"},
      {"malformed .root line", ".i 1\n.o 1\n.bdd 1\n1 0 1\nroot 2\n.e\n",
       ".root"},
      {"garbage node line", ".i 1\n.o 1\n.bdd 1\nx y z\n.root 2\n.e\n",
       "malformed node line"},
      {"trailing tokens on node line",
       ".i 1\n.o 1\n.bdd 1\n1 0 1 9\n.root 2\n.e\n", "trailing"},
      {"trailing tokens on .root",
       ".i 1\n.o 1\n.bdd 1\n1 0 1\n.root 2 7\n.e\n", "trailing"},
      {"negative field", ".i 1\n.o 1\n.bdd 1\n0 -1 1\n.root 2\n.e\n",
       "negative"},
      {"rank beyond .i + .o", ".i 1\n.o 1\n.bdd 1\n5 0 1\n.root 2\n.e\n",
       "ranks beyond"},
      {"rank overflowing uint32",
       ".i 1\n.o 1\n.bdd 1\n4294967295 0 1\n.root 2\n.e\n", "out of range"},
      {"child id not yet defined (forward reference)",
       ".i 1\n.o 2\n.bdd 2\n0 4 1\n1 2 3\n.root 4\n.e\n", "child id"},
      {"child above parent in the order",
       ".i 1\n.o 1\n.bdd 2\n0 0 1\n1 2 1\n.root 4\n.e\n",
       "not below parent"},
      {"root references unknown node",
       ".i 1\n.o 1\n.bdd 1\n1 0 1\n.root 8\n.e\n", "root references"},
      {"absurd .i declaration", ".i 99999999999\n.o 1\n.r\n0 1\n.e\n",
       "too many"},
      {"absurd .o declaration", ".i 1\n.o 4294967296\n.r\n0 1\n.e\n",
       "too many"},
      {"absurd .bdd node count",
       ".i 1\n.o 1\n.bdd 99999999999\n1 0 1\n.root 2\n.e\n", "too many"},
      {"missing .e after body", ".i 1\n.o 1\n.bdd 1\n1 0 1\n.root 2\n",
       "missing .e"},
      {"duplicate .bdd body",
       ".i 1\n.o 1\n.bdd 1\n1 0 1\n.root 2\n.bdd 1\n1 0 1\n.root 2\n.e\n",
       "bad .bdd"},
      {"overlapping .iv/.ov ranks",
       ".i 1\n.o 1\n.iv 0\n.ov 0\n.bdd 1\n1 0 1\n.root 2\n.e\n",
       "overlapping"},
      {".order with too few ranks",
       ".i 1\n.o 1\n.order 0\n.bdd 1\n1 0 1\n.root 2\n.e\n",
       "rank count mismatch"},
      {".order rank out of range",
       ".i 1\n.o 1\n.order 0 5\n.bdd 1\n1 0 1\n.root 2\n.e\n",
       "rank out of range"},
      {".order repeating a rank",
       ".i 1\n.o 1\n.order 0 0\n.bdd 1\n1 0 1\n.root 2\n.e\n",
       "repeats a rank"},
      {".order with a .r body", ".i 1\n.o 1\n.order 0 1\n.r\n0 1\n.e\n",
       "require a .bdd body"},
      {"duplicate .order",
       ".i 1\n.o 1\n.order 0 1\n.order 0 1\n.bdd 1\n1 0 1\n.root 2\n.e\n",
       "duplicate .order"},
      {".order after the body",
       ".i 1\n.o 1\n.bdd 1\n1 0 1\n.root 2\n.order 0 1\n.e\n",
       "before the body"},
      {".order before .i/.o",
       ".order 0 1\n.i 1\n.o 1\n.bdd 1\n1 0 1\n.root 2\n.e\n",
       "requires .i and .o"},
  };
  for (const MalformedCase& test : cases) {
    BddManager mgr{0};
    try {
      (void)read_relation(mgr, test.text);
      FAIL() << "expected parse error for: " << test.name;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find(test.fragment),
                std::string::npos)
          << test.name << " raised the wrong error: " << error.what();
    }
  }
}

TEST(RelationIoTest, OrderSidecarOmittedForIdentityOrderManagers) {
  // A manager that never reordered keeps producing byte-identical
  // compact output — no `.order` line sneaks in.
  BddManager mgr{0};
  const RelationSpace space = make_space(mgr, 2, 2);
  const BooleanRelation r = fig1_relation(mgr, space);
  EXPECT_EQ(write_relation_bdd(r).find(".order"), std::string::npos);
}

TEST(RelationIoTest, OrderSidecarRoundTripSeedsTheReaderManager) {
  // Writer side: a relation living in a manager with a non-identity
  // block order emits `.order`.  Reader side: parsing seeds the fresh
  // manager with the same relative order BEFORE the body deserializes,
  // so warm slots start from the writer's known-good order — and the
  // relation itself survives unchanged.
  BddManager mgr{0};
  const RelationSpace space = make_space(mgr, 2, 2);
  mgr.seed_block_order(
      0, std::vector<std::uint32_t>{2, 0, 3, 1});
  const BooleanRelation r = fig1_relation(mgr, space);
  const std::string text = write_relation_bdd(r);
  EXPECT_NE(text.find(".order 2 0 3 1"), std::string::npos) << text;

  BddManager fresh{0};
  const BooleanRelation parsed = read_relation(fresh, text);
  EXPECT_EQ(parsed.to_table(), r.to_table());
  EXPECT_FALSE(fresh.has_identity_order());
  for (std::uint32_t v = 0; v < 4; ++v) {
    EXPECT_EQ(fresh.level_of_var(v), mgr.level_of_var(v)) << "var " << v;
  }
  // Idempotence: writing from the seeded reader reproduces the text.
  EXPECT_EQ(write_relation_bdd(parsed), text);
}

TEST(RelationIoTest, OrderSidecarUsesBlockRelativeRanks) {
  // The sidecar must survive a variable-offset shift: ranks are relative
  // to the relation's own block, not absolute manager indices.
  BddManager mgr{0};
  (void)mgr.add_vars(3);  // unrelated prefix block
  const RelationSpace space = make_space(mgr, 2, 2);
  mgr.seed_block_order(
      3, std::vector<std::uint32_t>{1, 0, 3, 2});
  const BooleanRelation r = fig10_relation(mgr, space);
  const std::string text = write_relation_bdd(r);
  EXPECT_NE(text.find(".order 1 0 3 2"), std::string::npos) << text;
  BddManager fresh{0};
  const BooleanRelation parsed = read_relation(fresh, text);
  EXPECT_EQ(parsed.to_table(), r.to_table());
}

TEST(RelationIoTest, CompactBodyRoundTripStillWorksAfterHardening) {
  BddManager mgr{0};
  const RelationSpace space = make_space(mgr, 2, 2);
  for (const BooleanRelation& r : {fig1_relation(mgr, space),
                                   fig10_relation(mgr, space),
                                   fig8_relation(mgr, space)}) {
    BddManager fresh{0};
    const BooleanRelation parsed =
        read_relation(fresh, write_relation_bdd(r));
    EXPECT_EQ(parsed.to_table(), r.to_table());
  }
}

}  // namespace
}  // namespace brel
