// Tests for the Boolean-equation layer (Sec. 8): characteristic forms,
// reduction to a single equation, consistency, particular solutions and
// the verification-by-substitution of Example 8.3.

#include <gtest/gtest.h>

#include "equations/equations.hpp"
#include "relation/enumeration.hpp"

namespace brel {
namespace {

class EquationsTest : public ::testing::Test {
 protected:
  // Independent {a, b} = vars 0-1; dependent {x, y, z} = vars 2-4.
  BddManager mgr{5};
  std::vector<std::uint32_t> X{0, 1};
  std::vector<std::uint32_t> Y{2, 3, 4};

  Bdd a() { return mgr.var(0); }
  Bdd b() { return mgr.var(1); }
  Bdd x() { return mgr.var(2); }
  Bdd y() { return mgr.var(3); }
  Bdd z() { return mgr.var(4); }
};

TEST_F(EquationsTest, CharacteristicOfEquality) {
  // P = Q  <=>  (P ≡ Q) = 1  (Property 8.1).
  const BoolEquation eq{{x()}, {a() & b()}, EquationOp::Equal};
  EXPECT_TRUE(eq.characteristic() == x().iff(a() & b()));
}

TEST_F(EquationsTest, CharacteristicOfInclusion) {
  // P ⊆ Q  <=>  (!P + Q) = 1.
  const BoolEquation eq{{x()}, {a()}, EquationOp::Subseteq};
  EXPECT_TRUE(eq.characteristic() == ((!x()) | a()));
}

TEST_F(EquationsTest, MultiComponentEquationConjoins) {
  const BoolEquation eq{{x(), y()}, {a(), b()}, EquationOp::Equal};
  EXPECT_TRUE(eq.characteristic() == (x().iff(a()) & y().iff(b())));
}

TEST_F(EquationsTest, MalformedEquationThrows) {
  BoolEquationSystem sys(mgr, X, Y);
  EXPECT_THROW(sys.add_equation(std::vector<Bdd>{x(), y()},
                                std::vector<Bdd>{a()}),
               std::invalid_argument);
  EXPECT_THROW(sys.add_equation(std::vector<Bdd>{}, std::vector<Bdd>{}),
               std::invalid_argument);
}

TEST_F(EquationsTest, SystemReductionTheorem81) {
  // IE = T1 ∧ T2 contains exactly the points feasible in both equations.
  BoolEquationSystem sys(mgr, X, Y);
  sys.add_equation(x() | y(), a() | b());
  sys.add_equation(x() & y(), a() & b());
  const Bdd ie = sys.characteristic();
  EXPECT_TRUE(ie ==
              ((x() | y()).iff(a() | b()) & (x() & y()).iff(a() & b())));
}

TEST_F(EquationsTest, ConsistencyChecks) {
  // x ∨ y = a ∨ b, x ∧ y = a ∧ b: consistent (take x = a, y = b).
  BoolEquationSystem sys(mgr, X, Y);
  sys.add_equation(x() | y(), a() | b());
  sys.add_equation(x() & y(), a() & b());
  EXPECT_TRUE(sys.is_satisfiable());
  EXPECT_TRUE(sys.is_consistent());
}

TEST_F(EquationsTest, UnsatisfiableSystem) {
  // x ∧ !x = 1 has no satisfying point at all.
  BoolEquationSystem sys(mgr, X, Y);
  sys.add_equation(x() & !x(), mgr.one());
  EXPECT_FALSE(sys.is_satisfiable());
  EXPECT_FALSE(sys.is_consistent());
  EXPECT_THROW((void)sys.solve(), std::invalid_argument);
}

TEST_F(EquationsTest, SatisfiableButInconsistentSystem) {
  // x = a ∧ b together with x = a ∨ b: solvable only where ab = a+b
  // (a = b), so no solution *function* over all of X exists.
  BoolEquationSystem sys(mgr, X, Y);
  sys.add_equation(x(), a() & b());
  sys.add_equation(x(), a() | b());
  EXPECT_TRUE(sys.is_satisfiable());
  EXPECT_FALSE(sys.is_consistent());
}

TEST_F(EquationsTest, SolveProducesVerifiableSolution) {
  BoolEquationSystem sys(mgr, X, Y);
  sys.add_equation(x() | y(), a() | b());
  sys.add_equation(x() & y(), a() & b());
  sys.add_equation(z(), a() ^ b());
  const SolveResult result = sys.solve();
  EXPECT_TRUE(sys.is_solution(result.function));
  // z is forced: the third equation pins z = a ^ b.
  EXPECT_TRUE(result.function.outputs[2] == (a() ^ b()));
}

TEST_F(EquationsTest, KnownParticularSolutionsVerify) {
  // For x ∨ y = a ∨ b and x ∧ y = a ∧ b, both (x,y) = (a,b) and the
  // swapped (b,a) are particular solutions; (a∨b, a∧b) works too.
  BoolEquationSystem sys(mgr, X, Y);
  sys.add_equation(x() | y(), a() | b());
  sys.add_equation(x() & y(), a() & b());
  sys.add_equation(z(), mgr.zero());
  MultiFunction f1{{a(), b(), mgr.zero()}};
  MultiFunction f2{{b(), a(), mgr.zero()}};
  MultiFunction f3{{a() | b(), a() & b(), mgr.zero()}};
  MultiFunction bad{{a(), a(), mgr.zero()}};
  EXPECT_TRUE(sys.is_solution(f1));
  EXPECT_TRUE(sys.is_solution(f2));
  EXPECT_TRUE(sys.is_solution(f3));
  EXPECT_FALSE(sys.is_solution(bad));
}

TEST_F(EquationsTest, InclusionSystemSolutionInterval) {
  // x ⊆ a and a ∧ b ⊆ x: solutions are exactly the functions in the
  // interval [a·b, a].
  BoolEquationSystem sys(mgr, X, Y);
  sys.add_equation(x(), a(), EquationOp::Subseteq);
  sys.add_equation(a() & b(), x(), EquationOp::Subseteq);
  sys.add_equation(y(), mgr.zero());
  sys.add_equation(z(), mgr.zero());
  EXPECT_TRUE(sys.is_consistent());
  const SolveResult result = sys.solve();
  const Bdd solution = result.function.outputs[0];
  EXPECT_TRUE((a() & b()).subset_of(solution));
  EXPECT_TRUE(solution.subset_of(a()));
}

TEST_F(EquationsTest, ExampleSection8Structure) {
  // A system mirroring Example 8.1's shape (two equations, two
  // independent and three dependent variables), reduced per Theorem 8.1
  // and solved via the relation.  Equation 1 couples all three unknowns;
  // equation 2 forbids any two unknowns from being 1 simultaneously.
  BoolEquationSystem sys(mgr, X, Y);
  sys.add_equation(x() | (b() & y() & !z()) | ((!b()) & z()), a());
  sys.add_equation((x() & y()) | (x() & z()) | (y() & z()), mgr.zero());
  ASSERT_TRUE(sys.is_consistent());
  const SolveResult result = sys.solve();
  EXPECT_TRUE(sys.is_solution(result.function));
  // The relation view agrees with the system view.
  const BooleanRelation r = sys.to_relation();
  MultiFunction f = result.function;
  EXPECT_TRUE(r.is_compatible(f));
}

TEST_F(EquationsTest, LowenheimGeneralSolutionInstantiates) {
  // x ∨ y = a ∨ b, x ∧ y = a ∧ b: every parameter choice must yield a
  // particular solution.
  BoolEquationSystem sys(mgr, X, Y);
  sys.add_equation(x() | y(), a() | b());
  sys.add_equation(x() & y(), a() & b());
  sys.add_equation(z(), a());
  const SolveResult seed = sys.solve();
  const auto general = sys.general_solution(seed.function);
  EXPECT_EQ(general.parameters.size(), 3u);

  // Instantiate with a handful of parameter functions.
  const std::vector<std::vector<Bdd>> choices{
      {mgr.zero(), mgr.zero(), mgr.zero()},
      {mgr.one(), mgr.one(), mgr.one()},
      {a(), b(), a() ^ b()},
      {b(), a(), !a()},
  };
  for (const std::vector<Bdd>& params : choices) {
    const MultiFunction particular = sys.instantiate(general, params);
    EXPECT_TRUE(sys.is_solution(particular));
  }
}

TEST_F(EquationsTest, LowenheimIsReproductive) {
  // Parameters that already form a solution map to themselves — so every
  // particular solution is reachable.
  BoolEquationSystem sys(mgr, X, Y);
  sys.add_equation(x() | y(), a() | b());
  sys.add_equation(x() & y(), a() & b());
  sys.add_equation(z(), mgr.zero());
  const SolveResult seed = sys.solve();
  const auto general = sys.general_solution(seed.function);

  // (b, a, 0) is a known solution; feeding it as parameters returns it.
  const std::vector<Bdd> params{b(), a(), mgr.zero()};
  const MultiFunction reproduced = sys.instantiate(general, params);
  EXPECT_TRUE(reproduced.outputs[0] == b());
  EXPECT_TRUE(reproduced.outputs[1] == a());
  EXPECT_TRUE(reproduced.outputs[2].is_zero());
}

TEST_F(EquationsTest, LowenheimSeedMustBeSolution) {
  BoolEquationSystem sys(mgr, X, Y);
  sys.add_equation(x(), a());
  MultiFunction bad{{!a(), mgr.zero(), mgr.zero()}};
  EXPECT_THROW((void)sys.general_solution(bad), std::invalid_argument);
}

TEST_F(EquationsTest, LowenheimCoversAllSolutionsOfSmallSystem) {
  // Exhaustive: instantiating the general solution with all 2^2 constant
  // parameter vectors of a 1-dependent system reaches every solution.
  BoolEquationSystem sys(mgr, X, {2});  // only x is dependent
  sys.add_equation(a() & b(), x(), EquationOp::Subseteq);
  sys.add_equation(x(), a() | b(), EquationOp::Subseteq);
  const SolveResult seed = sys.solve();
  const auto general = sys.general_solution(seed.function);
  std::set<detail::Edge> reached;
  for (const Bdd& p : {mgr.zero(), mgr.one(), a(), b(), a() & b(),
                       a() | b(), a() ^ b(), !a()}) {
    const MultiFunction inst = sys.instantiate(general, {p});
    EXPECT_TRUE(sys.is_solution(inst));
    reached.insert(inst.outputs[0].raw_edge());
  }
  // The interval [ab, a+b] contains exactly four functions (g(11) = 1 and
  // g(00) = 0 are forced; g(01) and g(10) are free): ab, a, b, a+b.
  // The reproductive formula reaches all of them.
  EXPECT_EQ(reached.size(), 4u);
}

TEST_F(EquationsTest, RelationAndEnumerationAgree) {
  BoolEquationSystem sys(mgr, X, Y);
  sys.add_equation(x() ^ y(), a());
  sys.add_equation(z(), b());
  const BooleanRelation r = sys.to_relation();
  // Count solutions: per input vertex, (x,y) has 2 choices, z fixed: 2^4.
  EXPECT_DOUBLE_EQ(count_compatible_functions(r), 16.0);
  std::uint64_t verified = 0;
  enumerate_compatible_functions(r, [&](const MultiFunction& f) {
    EXPECT_TRUE(sys.is_solution(f));
    ++verified;
    return true;
  });
  EXPECT_EQ(verified, 16u);
}

}  // namespace
}  // namespace brel
