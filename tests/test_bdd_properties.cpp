// Property-based tests: every BDD operation is cross-checked against an
// explicit truth-table model on random functions.  Parameterized over seeds
// so each instantiation explores a different corner of function space.

#include <gtest/gtest.h>

#include <bitset>
#include <random>

#include "bdd/bdd.hpp"

namespace brel {
namespace {

constexpr std::uint32_t kVars = 5;
constexpr std::uint32_t kPoints = 1u << kVars;

/// Truth-table model: bit i of `table` = value of the function on the
/// assignment whose variable j takes bit j of i.
using Table = std::uint32_t;

std::vector<bool> point_of(std::uint32_t index) {
  std::vector<bool> point(kVars);
  for (std::uint32_t j = 0; j < kVars; ++j) {
    point[j] = ((index >> j) & 1u) != 0;
  }
  return point;
}

Bdd bdd_of_table(BddManager& mgr, Table table) {
  Bdd f = mgr.zero();
  for (std::uint32_t i = 0; i < kPoints; ++i) {
    if (((table >> i) & 1u) == 0) {
      continue;
    }
    Bdd minterm = mgr.one();
    for (std::uint32_t j = 0; j < kVars; ++j) {
      minterm = minterm & mgr.literal(j, ((i >> j) & 1u) != 0);
    }
    f = f | minterm;
  }
  return f;
}

Table table_of_bdd(const Bdd& f) {
  Table table = 0;
  for (std::uint32_t i = 0; i < kPoints; ++i) {
    if (f.eval(point_of(i))) {
      table |= (1u << i);
    }
  }
  return table;
}

class BddPropertyTest : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  BddManager mgr{kVars};
  std::mt19937 rng{GetParam()};

  Table random_table() {
    return std::uniform_int_distribution<Table>{}(rng);
  }
};

TEST_P(BddPropertyTest, TableRoundTrip) {
  for (int iter = 0; iter < 20; ++iter) {
    const Table t = random_table();
    EXPECT_EQ(table_of_bdd(bdd_of_table(mgr, t)), t);
  }
}

TEST_P(BddPropertyTest, ConnectivesMatchTableSemantics) {
  for (int iter = 0; iter < 20; ++iter) {
    const Table ta = random_table();
    const Table tb = random_table();
    const Bdd a = bdd_of_table(mgr, ta);
    const Bdd b = bdd_of_table(mgr, tb);
    EXPECT_EQ(table_of_bdd(a & b), ta & tb);
    EXPECT_EQ(table_of_bdd(a | b), ta | tb);
    EXPECT_EQ(table_of_bdd(a ^ b), ta ^ tb);
    EXPECT_EQ(table_of_bdd(!a), static_cast<Table>(~ta));
  }
}

TEST_P(BddPropertyTest, IteMatchesTableSemantics) {
  for (int iter = 0; iter < 20; ++iter) {
    const Table tf = random_table();
    const Table tg = random_table();
    const Table th = random_table();
    const Bdd f = bdd_of_table(mgr, tf);
    const Bdd g = bdd_of_table(mgr, tg);
    const Bdd h = bdd_of_table(mgr, th);
    EXPECT_EQ(table_of_bdd(mgr.ite(f, g, h)), (tf & tg) | (~tf & th));
  }
}

TEST_P(BddPropertyTest, CanonicityEqualTablesEqualNodes) {
  for (int iter = 0; iter < 10; ++iter) {
    const Table t = random_table();
    const Bdd direct = bdd_of_table(mgr, t);
    // Build the same function through a different expression tree.
    const Table half = random_table();
    const Bdd a = bdd_of_table(mgr, t & half);
    const Bdd b = bdd_of_table(mgr, t & ~half);
    EXPECT_TRUE((a | b) == direct);
  }
}

TEST_P(BddPropertyTest, SatCountMatchesPopcount) {
  for (int iter = 0; iter < 20; ++iter) {
    const Table t = random_table();
    const Bdd f = bdd_of_table(mgr, t);
    EXPECT_DOUBLE_EQ(mgr.sat_count(f, kVars),
                     static_cast<double>(std::bitset<32>(t).count()));
  }
}

TEST_P(BddPropertyTest, QuantificationMatchesTableSemantics) {
  for (int iter = 0; iter < 20; ++iter) {
    const Table t = random_table();
    const Bdd f = bdd_of_table(mgr, t);
    const std::uint32_t var = std::uniform_int_distribution<std::uint32_t>{
        0, kVars - 1}(rng);
    const std::vector<std::uint32_t> q{var};
    Table expect_exists = 0;
    Table expect_forall = 0;
    for (std::uint32_t i = 0; i < kPoints; ++i) {
      const std::uint32_t with_one = i | (1u << var);
      const std::uint32_t with_zero = i & ~(1u << var);
      const bool v1 = ((t >> with_one) & 1u) != 0;
      const bool v0 = ((t >> with_zero) & 1u) != 0;
      if (v1 || v0) {
        expect_exists |= 1u << i;
      }
      if (v1 && v0) {
        expect_forall |= 1u << i;
      }
    }
    EXPECT_EQ(table_of_bdd(mgr.exists(f, q)), expect_exists);
    EXPECT_EQ(table_of_bdd(mgr.forall(f, q)), expect_forall);
  }
}

TEST_P(BddPropertyTest, AndExistsEqualsExistsOfAnd) {
  for (int iter = 0; iter < 20; ++iter) {
    const Bdd f = bdd_of_table(mgr, random_table());
    const Bdd g = bdd_of_table(mgr, random_table());
    std::vector<std::uint32_t> q;
    for (std::uint32_t v = 0; v < kVars; ++v) {
      if (std::bernoulli_distribution{0.4}(rng)) {
        q.push_back(v);
      }
    }
    EXPECT_TRUE(mgr.and_exists(f, g, q) == mgr.exists(f & g, q));
  }
}

TEST_P(BddPropertyTest, ConstrainAndRestrictAgreeOnCare) {
  for (int iter = 0; iter < 20; ++iter) {
    const Bdd f = bdd_of_table(mgr, random_table());
    Table care_table = random_table();
    if (care_table == 0) {
      care_table = 1;  // care set must be non-empty
    }
    const Bdd care = bdd_of_table(mgr, care_table);
    const Bdd fc = mgr.constrain(f, care);
    const Bdd fr = mgr.restrict_to(f, care);
    EXPECT_TRUE((care & (f ^ fc)).is_zero());
    EXPECT_TRUE((care & (f ^ fr)).is_zero());
  }
}

TEST_P(BddPropertyTest, IsopRespectsIntervalAndMatchesCover) {
  std::vector<std::uint32_t> identity;
  for (std::uint32_t i = 0; i < kVars; ++i) {
    identity.push_back(i);
  }
  for (int iter = 0; iter < 20; ++iter) {
    const Table t_on = random_table();
    const Table t_up = t_on | random_table();  // upper ⊇ lower
    const Bdd lower = bdd_of_table(mgr, t_on);
    const Bdd upper = bdd_of_table(mgr, t_up);
    const IsopResult result = mgr.isop(lower, upper);
    EXPECT_TRUE(lower.subset_of(result.function));
    EXPECT_TRUE(result.function.subset_of(upper));
    EXPECT_TRUE(mgr.cover_bdd(result.cover, identity) == result.function);
  }
}

TEST_P(BddPropertyTest, IsopCoverIsIrredundant) {
  std::vector<std::uint32_t> identity;
  for (std::uint32_t i = 0; i < kVars; ++i) {
    identity.push_back(i);
  }
  for (int iter = 0; iter < 10; ++iter) {
    const Table t_on = random_table();
    const Table t_up = t_on | random_table();
    const Bdd lower = bdd_of_table(mgr, t_on);
    const Bdd upper = bdd_of_table(mgr, t_up);
    const IsopResult result = mgr.isop(lower, upper);
    // Dropping any single cube must uncover some minterm of `lower`.
    for (std::size_t skip = 0; skip < result.cover.cube_count(); ++skip) {
      Cover reduced(kVars);
      for (std::size_t i = 0; i < result.cover.cube_count(); ++i) {
        if (i != skip) {
          reduced.add_cube(result.cover.cubes()[i]);
        }
      }
      const Bdd reduced_f = mgr.cover_bdd(reduced, identity);
      EXPECT_FALSE(lower.subset_of(reduced_f))
          << "cube " << skip << " is redundant";
    }
  }
}

TEST_P(BddPropertyTest, ShortestCubeIsShortestImplicant) {
  std::vector<std::uint32_t> identity;
  for (std::uint32_t i = 0; i < kVars; ++i) {
    identity.push_back(i);
  }
  for (int iter = 0; iter < 10; ++iter) {
    Table t = random_table();
    if (t == 0) {
      t = 1;
    }
    const Bdd f = bdd_of_table(mgr, t);
    const Cube cube = mgr.shortest_cube(f);
    EXPECT_TRUE(mgr.cube_bdd(cube, identity).subset_of(f));
    // No implicant of f (as a cube over all 3^kVars candidates) is shorter.
    // Exhaustively check all cubes with fewer literals.
    const std::size_t bound = cube.literal_count();
    std::vector<Lit> lits(kVars, Lit::DontCare);
    auto enumerate = [&](auto&& self, std::uint32_t var,
                         std::size_t used) -> bool {
      if (used >= bound) {
        return false;  // not shorter
      }
      if (var == kVars) {
        Cube candidate(kVars);
        for (std::uint32_t i = 0; i < kVars; ++i) {
          candidate.set_lit(i, lits[i]);
        }
        return mgr.cube_bdd(candidate, identity).subset_of(f);
      }
      for (const Lit value : {Lit::DontCare, Lit::Zero, Lit::One}) {
        lits[var] = value;
        const std::size_t next = used + (value == Lit::DontCare ? 0 : 1);
        if (next <= bound && self(self, var + 1, next)) {
          return true;
        }
      }
      lits[var] = Lit::DontCare;
      return false;
    };
    EXPECT_FALSE(enumerate(enumerate, 0, 0))
        << "found an implicant shorter than " << cube.to_string();
  }
}

TEST_P(BddPropertyTest, ComposePreservesSemantics) {
  for (int iter = 0; iter < 10; ++iter) {
    const Bdd f = bdd_of_table(mgr, random_table());
    std::vector<Bdd> sub;
    std::vector<Table> sub_tables;
    for (std::uint32_t i = 0; i < kVars; ++i) {
      const Table t = random_table();
      sub_tables.push_back(t);
      sub.push_back(bdd_of_table(mgr, t));
    }
    const Bdd composed = mgr.compose(f, sub);
    for (std::uint32_t i = 0; i < kPoints; ++i) {
      const std::vector<bool> point = point_of(i);
      std::vector<bool> mapped(kVars);
      for (std::uint32_t j = 0; j < kVars; ++j) {
        mapped[j] = sub[j].eval(point);
      }
      EXPECT_EQ(composed.eval(point), f.eval(mapped));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace brel
