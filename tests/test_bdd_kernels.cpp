// Differential tests for the dedicated kernels introduced by the hot-path
// overhaul (and_rec / xor_rec / cofactor_rec / leq_rec / balanced big_and
// and big_or): every kernel is cross-checked against an independent
// formulation of the same function — truth-table evaluation, De Morgan /
// Shannon identities routed through *different* kernels, and the untouched
// generalized-cofactor (constrain) recursion — on randomized function
// suites and on the BR benchmark relations.  Canonicity turns each check
// into a single edge comparison.
//
// The second half stresses the O(1) GC trigger: the incremental
// external-root counter must exactly track handle lifetimes through op
// churn, forced collections and solver runs, and declining
// garbage_collect_if_needed must not scan the node table (asserted by
// running a quarter-million declining checks against a large live table
// within a wall-clock budget no O(live)-per-check implementation could
// meet).

#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <vector>

#include "bdd/bdd.hpp"
#include "benchgen/relation_suite.hpp"
#include "brel/solver.hpp"

namespace brel {
namespace {

Bdd random_function(BddManager& mgr, std::mt19937& rng, std::uint32_t vars,
                    int depth) {
  if (depth == 0) {
    return mgr.literal(rng() % vars, rng() % 2 == 0);
  }
  const Bdd lhs = random_function(mgr, rng, vars, depth - 1);
  const Bdd rhs = random_function(mgr, rng, vars, depth - 1);
  switch (rng() % 3) {
    case 0:
      return lhs & rhs;
    case 1:
      return lhs | rhs;
    default:
      return lhs ^ rhs;
  }
}

/// All 2^vars assignments of f, as a bit-per-minterm truth table.
std::vector<bool> truth_table(const Bdd& f, std::uint32_t vars) {
  std::vector<bool> table;
  table.reserve(std::size_t{1} << vars);
  std::vector<bool> point(vars, false);
  for (std::size_t m = 0; m < (std::size_t{1} << vars); ++m) {
    for (std::uint32_t v = 0; v < vars; ++v) {
      point[v] = ((m >> v) & 1u) != 0;
    }
    table.push_back(f.eval(point));
  }
  return table;
}

TEST(BddKernelDiffTest, AndXorAgainstTruthTablesAndCrossIdentities) {
  constexpr std::uint32_t kVars = 6;
  BddManager mgr{kVars};
  std::mt19937 rng{101};
  for (int trial = 0; trial < 200; ++trial) {
    const Bdd f = random_function(mgr, rng, kVars, 3);
    const Bdd g = random_function(mgr, rng, kVars, 3);
    const Bdd conj = f & g;
    const Bdd disj = f | g;
    const Bdd parity = f ^ g;
    // Ground truth: pointwise over every assignment.
    const auto tf = truth_table(f, kVars);
    const auto tg = truth_table(g, kVars);
    const auto tconj = truth_table(conj, kVars);
    const auto tdisj = truth_table(disj, kVars);
    const auto tparity = truth_table(parity, kVars);
    for (std::size_t m = 0; m < tf.size(); ++m) {
      ASSERT_EQ(tconj[m], tf[m] && tg[m]);
      ASSERT_EQ(tdisj[m], tf[m] || tg[m]);
      ASSERT_EQ(tparity[m], tf[m] != tg[m]);
    }
    // Cross-kernel identities (canonicity makes these edge equalities):
    // the ITE universal connective must reproduce every dedicated kernel.
    EXPECT_TRUE(conj == mgr.ite(f, g, mgr.zero()));
    EXPECT_TRUE(disj == mgr.ite(f, mgr.one(), g));
    EXPECT_TRUE(parity == mgr.ite(f, !g, g));
    // De Morgan / complement absorption.
    EXPECT_TRUE(conj == !((!f) | (!g)));
    EXPECT_TRUE(parity == ((f & (!g)) | ((!f) & g)));
    EXPECT_TRUE(parity == !(f.iff(g)));
    // Commutativity must hold structurally (one cache entry per pair).
    EXPECT_TRUE(conj == (g & f));
    EXPECT_TRUE(parity == (g ^ f));
  }
}

TEST(BddKernelDiffTest, CofactorAgainstConstrainAndEvaluation) {
  constexpr std::uint32_t kVars = 6;
  BddManager mgr{kVars};
  std::mt19937 rng{202};
  for (int trial = 0; trial < 100; ++trial) {
    const Bdd f = random_function(mgr, rng, kVars, 4);
    for (std::uint32_t v = 0; v < kVars; ++v) {
      for (const bool phase : {false, true}) {
        const Bdd cof = f.cofactor(v, phase);
        // The untouched generalized-cofactor recursion over the literal
        // (the pre-overhaul formulation) must produce the same function.
        EXPECT_TRUE(cof == mgr.constrain(f, mgr.literal(v, phase)));
        // Pointwise: cof agrees with f at v := phase and ignores v.
        std::vector<bool> point(kVars, false);
        for (std::size_t m = 0; m < (std::size_t{1} << kVars); ++m) {
          for (std::uint32_t i = 0; i < kVars; ++i) {
            point[i] = ((m >> i) & 1u) != 0;
          }
          const bool at_cof = cof.eval(point);
          point[v] = phase;
          ASSERT_EQ(at_cof, f.eval(point));
        }
        // Shannon expansion stitches the cofactors back together.
        const Bdd x = mgr.var(v);
        EXPECT_TRUE(f == ((x & f.cofactor(v, true)) |
                          ((!x) & f.cofactor(v, false))));
      }
    }
  }
}

TEST(BddKernelDiffTest, LeqAgainstMaterializedDifference) {
  constexpr std::uint32_t kVars = 7;
  BddManager mgr{kVars};
  std::mt19937 rng{303};
  int positives = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const Bdd f = random_function(mgr, rng, kVars, 3);
    const Bdd g = random_function(mgr, rng, kVars, 3);
    // The pre-overhaul formulation materialized f & !g and tested it.
    EXPECT_EQ(f.subset_of(g), (f & (!g)).is_zero());
    // Constructed positive cases, so the test is not all-negative.
    EXPECT_TRUE((f & g).subset_of(f));
    EXPECT_TRUE(f.subset_of(f | g));
    EXPECT_TRUE(mgr.zero().subset_of(f));
    EXPECT_TRUE(f.subset_of(mgr.one()));
    if (f.subset_of(g)) {
      ++positives;
      EXPECT_TRUE((f | g) == g);
    }
  }
  EXPECT_GT(positives, 0);  // the random suite produced some containments
}

TEST(BddKernelDiffTest, BalancedBigOpsMatchSequentialFold) {
  constexpr std::uint32_t kVars = 16;
  BddManager mgr{kVars};
  std::mt19937 rng{404};
  for (const std::size_t width : {0u, 1u, 2u, 3u, 7u, 24u, 65u}) {
    std::vector<Bdd> fs;
    for (std::size_t i = 0; i < width; ++i) {
      fs.push_back(random_function(mgr, rng, kVars, 3));
    }
    Bdd fold_and = mgr.one();
    Bdd fold_or = mgr.zero();
    for (const Bdd& f : fs) {  // the pre-overhaul left fold
      fold_and = fold_and & f;
      fold_or = fold_or | f;
    }
    EXPECT_TRUE(mgr.big_and(fs) == fold_and);
    EXPECT_TRUE(mgr.big_or(fs) == fold_or);
  }
}

TEST(BddKernelDiffTest, KernelsAgreeOnBenchmarkRelationSuite) {
  // The randomized-relation pass: every new kernel against an independent
  // formulation, on the characteristic functions and projections the
  // solver actually manipulates.
  for (const RelationBenchmark& bench : relation_suite()) {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r =
        make_benchmark_relation(mgr, bench, inputs, outputs);
    const Bdd chi = r.characteristic();
    const Bdd misf_chi = r.misf().characteristic();
    EXPECT_EQ(chi.subset_of(misf_chi), (chi & (!misf_chi)).is_zero());
    EXPECT_TRUE(chi.subset_of(misf_chi));  // Property 4.9: R ⊆ MISF(R)
    for (const std::uint32_t y : outputs) {
      const Bdd c1 = chi.cofactor(y, true);
      const Bdd c0 = chi.cofactor(y, false);
      EXPECT_TRUE(c1 == mgr.constrain(chi, mgr.literal(y, true)));
      EXPECT_TRUE(c0 == mgr.constrain(chi, mgr.literal(y, false)));
      const Bdd yv = mgr.var(y);
      EXPECT_TRUE(chi == ((yv & c1) | ((!yv) & c0)));
      EXPECT_TRUE((chi ^ misf_chi) == mgr.ite(chi, !misf_chi, misf_chi));
    }
  }
}

// ---------------------------------------------------------------------------
// GC-churn stress: the incremental root counter and the O(1) trigger.
// ---------------------------------------------------------------------------

TEST(BddGcChurnTest, ExternalRootCounterTracksHandleLifetimes) {
  BddManager mgr{8};
  EXPECT_EQ(mgr.external_root_count(), 0u);
  {
    const Bdd a = mgr.var(0);
    EXPECT_EQ(mgr.external_root_count(), 1u);
    const Bdd b = mgr.var(1);
    EXPECT_EQ(mgr.external_root_count(), 2u);
    const Bdd c = a;  // same node: refcount 2, still one root
    EXPECT_EQ(mgr.external_root_count(), 2u);
    const Bdd d = !a;  // complement edge, same node
    EXPECT_EQ(mgr.external_root_count(), 2u);
    {
      const Bdd e = a & b;
      EXPECT_EQ(mgr.external_root_count(), 3u);
    }
    EXPECT_EQ(mgr.external_root_count(), 2u);
    // Constants never count as roots.
    const Bdd one = mgr.one();
    const Bdd zero = mgr.zero();
    EXPECT_EQ(mgr.external_root_count(), 2u);
  }
  EXPECT_EQ(mgr.external_root_count(), 0u);
}

TEST(BddGcChurnTest, CounterConsistentThroughOpAndGcChurn) {
  BddManager mgr{12};
  std::mt19937 rng{55};
  std::vector<Bdd> pool;
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 40; ++i) {
      pool.push_back(random_function(mgr, rng, 12, 3));
    }
    // Drop a random subset of handles.
    for (int i = 0; i < 20 && !pool.empty(); ++i) {
      pool.erase(pool.begin() + static_cast<long>(rng() % pool.size()));
    }
    if (round % 3 == 0) {
      mgr.garbage_collect();
    } else {
      mgr.garbage_collect_if_needed(/*dead_node_threshold=*/64);
    }
    // The counter equals the number of distinct non-constant root nodes
    // among the live handles (recomputed the slow way).
    std::vector<std::uint32_t> roots;
    for (const Bdd& f : pool) {
      if (!f.is_constant()) {
        roots.push_back(detail::edge_index(f.raw_edge()));
      }
    }
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
    ASSERT_EQ(mgr.external_root_count(), roots.size());
    // Roots can never outnumber live nodes.
    ASSERT_LE(mgr.external_root_count(), mgr.stats().live_nodes);
  }
}

TEST(BddGcChurnTest, SolvesInterleavedWithForcedCollections) {
  // Fig. 1 relation solved repeatedly with forced GCs and trigger churn in
  // between: solutions and stats invariants must be unaffected.
  BddManager mgr{4};
  const auto r = BooleanRelation::from_table(
      mgr, {0, 1}, {2, 3},
      {{"00", {"00"}}, {"01", {"01"}}, {"10", {"00", "11"}}, {"11", {"1-"}}});
  SolverOptions options;
  options.cost = sum_of_bdd_sizes();
  double first_cost = -1.0;
  for (int round = 0; round < 10; ++round) {
    const SolveResult result = BrelSolver(options).solve(r);
    EXPECT_TRUE(r.is_compatible(result.function));
    if (first_cost < 0.0) {
      first_cost = result.cost;
    } else {
      EXPECT_DOUBLE_EQ(result.cost, first_cost);
    }
    const std::uint64_t gc_runs_before = mgr.stats().gc_runs;
    mgr.garbage_collect();
    EXPECT_EQ(mgr.stats().gc_runs, gc_runs_before + 1);
    mgr.garbage_collect_if_needed();
    ASSERT_LE(mgr.external_root_count(), mgr.stats().live_nodes);
  }
}

TEST(BddGcChurnTest, DecliningTriggerIsConstantTime) {
  // Build a table whose live size exceeds the threshold but whose root
  // count forbids collection (live <= 4 * roots), i.e. the decline path
  // that the pre-overhaul implementation walked with an O(live) refcount
  // scan per call — from the solver loop, on every expansion step.
  BddManager mgr{160};
  std::mt19937 rng{77};
  std::vector<Bdd> roots;
  int safety = 0;
  while (mgr.stats().live_nodes < 12000) {
    // Depth-1 pairs: ~one fresh node per held root, so the table stays
    // within the live <= 4 * roots region where the trigger declines.
    // (Complement edges share OR/XNOR results with AND/XOR nodes, so the
    // distinct-node supply is ~5 per variable pair; 160 variables give
    // ~64k possible nodes, far above the 12k target.)
    roots.push_back(random_function(mgr, rng, 160, 1));
    ASSERT_LT(++safety, 2000000) << "node-supply saturated below target";
  }
  const std::size_t live = mgr.stats().live_nodes;
  const std::size_t root_count = mgr.external_root_count();
  ASSERT_GE(live, 1000u);
  ASSERT_LE(live, root_count * 4) << "workload must force the decline path";

  constexpr std::uint64_t kChecks = 400000;
  const std::uint64_t gc_runs_before = mgr.stats().gc_runs;
  const std::uint64_t gc_checks_before = mgr.stats().gc_checks;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kChecks; ++i) {
    mgr.garbage_collect_if_needed(/*dead_node_threshold=*/1000);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(mgr.stats().gc_runs, gc_runs_before);  // declined every time
  EXPECT_EQ(mgr.stats().gc_checks, gc_checks_before + kChecks);
  // 400k declining checks over a >=12k-node table: an O(live) scan per
  // check is >= 4.8e9 node visits (several seconds at best); O(1) is
  // milliseconds.  The bound leaves ~1000x headroom for slow CI.
  EXPECT_LT(elapsed, 2.0)
      << "garbage_collect_if_needed appears to scan on the decline path";
}

TEST(BddGcChurnTest, PerOpCacheStatsAreTracked) {
  BddManager mgr{10};
  std::mt19937 rng{88};
  const Bdd f = random_function(mgr, rng, 10, 4);
  const Bdd g = random_function(mgr, rng, 10, 4);
  const BddStats& stats = mgr.stats();
  const auto idx = [](BddOp op) { return static_cast<std::size_t>(op); };

  const std::uint64_t and_before = stats.op_lookups[idx(BddOp::And)];
  (void)(f & g);
  EXPECT_GT(stats.op_lookups[idx(BddOp::And)], and_before);

  const std::uint64_t xor_before = stats.op_lookups[idx(BddOp::Xor)];
  (void)(f ^ g);
  EXPECT_GT(stats.op_lookups[idx(BddOp::Xor)], xor_before);

  const std::uint64_t leq_before = stats.op_lookups[idx(BddOp::Leq)];
  (void)f.subset_of(g);
  EXPECT_GE(stats.op_lookups[idx(BddOp::Leq)], leq_before);

  const std::uint64_t cof_before = stats.op_lookups[idx(BddOp::Cofactor)];
  (void)f.cofactor(3, true);
  EXPECT_GE(stats.op_lookups[idx(BddOp::Cofactor)], cof_before);

  // Aggregate counters are folded from the per-op arrays on stats() read.
  const BddStats& folded = mgr.stats();
  std::uint64_t lookup_sum = 0;
  std::uint64_t hit_sum = 0;
  for (std::size_t op = 0; op < kBddOpCount; ++op) {
    lookup_sum += folded.op_lookups[op];
    hit_sum += folded.op_hits[op];
  }
  EXPECT_EQ(folded.cache_lookups, lookup_sum);
  EXPECT_EQ(folded.cache_hits, hit_sum);
  EXPECT_LE(folded.cache_hits, folded.cache_lookups);

  // A repeated identical op must hit (2-way replacement keeps it).
  const std::uint64_t and_hits_before = stats.op_hits[idx(BddOp::And)];
  (void)(f & g);
  EXPECT_GT(stats.op_hits[idx(BddOp::And)], and_hits_before);
}

}  // namespace
}  // namespace brel
