// Tests for GlobalMemo's sharded concurrency layer (global_memo.hpp).
//
// test_solver_pool.cpp covers the memo's *semantics* — canonical keys,
// the completeness protocol, LRU improvement rules.  This file covers
// the SHARDING that was layered under those semantics:
//   - the auto shard policy (unlimited memo → kDefaultShards, finite
//     capacity → one shard for exact global LRU, explicit counts
//     rounded up to a power of two and clamped);
//   - keys distribute across shards and shard_of is a stable total
//     function onto [0, shard_count);
//   - the capacity bound is enforced PER SHARD (ceil split);
//   - the run-stamp vouching of mark_complete holds inside one shard of
//     a multi-shard memo (eviction hole re-filled by a foreign run);
//   - concurrent publish / lookup / mark_complete across shards is safe
//     and loses nothing (this file is part of the TSan CI job);
//   - the per-shard relaxed statistic atomics fold to EXACT totals.
//
// Keys here are synthetic (distinct rank vectors, empty characteristic):
// the memo treats keys opaquely — hash, equality, plain data — so
// synthetic keys exercise the sharding without any BDD machinery.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "brel/global_memo.hpp"

namespace brel {
namespace {

/// A distinct, hashable, manager-free key: the memo never interprets
/// key contents, only compares and hashes them.
GlobalMemoKey synthetic_key(std::uint32_t i) {
  const std::vector<std::uint32_t> iranks{i, i * 7919u + 1};
  const std::vector<std::uint32_t> oranks{i + 1};
  return GlobalMemoKey(SerializedBdd{}, iranks, oranks);
}

PortableSolution solution_with_cost(double cost) {
  PortableSolution s;
  s.outputs.push_back(SerializedBdd{});
  s.cost = cost;
  return s;
}

TEST(MemoShardTest, AutoPolicyAndExplicitCounts) {
  // Unlimited memo: the service configuration — shard by default.
  EXPECT_EQ(GlobalMemo{}.shard_count(), GlobalMemo::kDefaultShards);
  // Finite capacity: one shard, so the LRU order stays globally exact
  // (the semantics test_solver_pool.cpp pins on GlobalMemo{1}/{8}).
  EXPECT_EQ(GlobalMemo{8}.shard_count(), 1u);
  // Explicit counts round up to a power of two and clamp to kMaxShards.
  EXPECT_EQ((GlobalMemo{static_cast<std::size_t>(-1), 1}).shard_count(), 1u);
  EXPECT_EQ((GlobalMemo{static_cast<std::size_t>(-1), 3}).shard_count(), 4u);
  EXPECT_EQ((GlobalMemo{static_cast<std::size_t>(-1), 100000}).shard_count(),
            GlobalMemo::kMaxShards);
  // A finite capacity splits ceil(capacity / shards) per shard.
  EXPECT_EQ((GlobalMemo{64, 4}).shard_capacity(), 16u);
  EXPECT_EQ((GlobalMemo{10, 4}).shard_capacity(), 3u);
  EXPECT_EQ(GlobalMemo{}.shard_capacity(), static_cast<std::size_t>(-1));
}

TEST(MemoShardTest, KeysDistributeAcrossShards) {
  GlobalMemo memo{static_cast<std::size_t>(-1), 8};
  ASSERT_EQ(memo.shard_count(), 8u);
  const MemoRunStamp run = memo.begin_run();
  for (std::uint32_t i = 0; i < 64; ++i) {
    const GlobalMemoKey key = synthetic_key(i);
    // shard_of is a stable total function onto [0, shard_count).
    const std::size_t shard = memo.shard_of(key);
    EXPECT_LT(shard, memo.shard_count());
    EXPECT_EQ(shard, memo.shard_of(key));
    memo.publish(key, solution_with_cost(1.0), run.run_id);
  }
  EXPECT_EQ(memo.size(), 64u);
  std::size_t populated = 0;
  std::size_t total = 0;
  for (std::size_t s = 0; s < memo.shard_count(); ++s) {
    populated += memo.shard_size(s) > 0 ? 1 : 0;
    total += memo.shard_size(s);
  }
  EXPECT_EQ(total, memo.size());
  // 64 distinct keys landing all on one of 8 shards would mean the
  // shard hash is degenerate — the very contention wall sharding is
  // supposed to remove.
  EXPECT_GE(populated, 2u);
}

TEST(MemoShardTest, CapacityIsEnforcedPerShard) {
  GlobalMemo memo{32, 4};  // 8 entries per shard
  ASSERT_EQ(memo.shard_capacity(), 8u);
  for (std::uint32_t i = 0; i < 200; ++i) {
    memo.publish(synthetic_key(i), solution_with_cost(1.0));
  }
  std::size_t total = 0;
  for (std::size_t s = 0; s < memo.shard_count(); ++s) {
    EXPECT_LE(memo.shard_size(s), memo.shard_capacity());
    total += memo.shard_size(s);
  }
  EXPECT_EQ(total, memo.size());
  EXPECT_LE(memo.size(), memo.capacity());
  // Every publish beyond a shard's bound evicted exactly one victim.
  EXPECT_EQ(memo.evictions(), memo.publishes() - memo.size());
}

TEST(MemoShardTest, RunStampVouchingHoldsInsideOneShardOfMany) {
  // The foreign-entry hazard of the completeness protocol, replayed
  // inside a single shard of a multi-shard memo: per-shard capacity 1,
  // two keys forced into the same shard, an eviction hole re-filled by
  // a concurrent run's partial publish.
  GlobalMemo memo{4, 4};  // 4 shards, ONE entry each
  ASSERT_EQ(memo.shard_capacity(), 1u);
  // Find two distinct keys hashing to the same shard.
  const GlobalMemoKey key_k = synthetic_key(0);
  GlobalMemoKey key_j = synthetic_key(1);
  for (std::uint32_t i = 2; memo.shard_of(key_j) != memo.shard_of(key_k);
       ++i) {
    key_j = synthetic_key(i);
  }
  const auto shared_k = std::make_shared<const GlobalMemoKey>(key_k);

  const MemoRunStamp run_a = memo.begin_run();
  memo.publish(key_k, solution_with_cost(5.0), run_a.run_id);
  const MemoRunStamp run_b = memo.begin_run();
  memo.publish(key_j, solution_with_cost(7.0), run_b.run_id);  // evicts k
  memo.publish(key_k, solution_with_cost(9.0), run_b.run_id);  // re-creates k
  // A drains and marks — but B's re-created entry is not A's to vouch
  // for: it must stay invisible.
  memo.mark_complete({&shared_k, 1}, run_a);
  EXPECT_FALSE(memo.lookup(key_k).has_value());
  // B itself can vouch for it.
  memo.mark_complete({&shared_k, 1}, run_b);
  ASSERT_TRUE(memo.lookup(key_k).has_value());
  EXPECT_EQ(memo.lookup(key_k)->cost, 9.0);
}

TEST(MemoShardTest, ConcurrentPublishLookupMarkCompleteAcrossShards) {
  // Each thread runs the full producing-run protocol over its own key
  // range while every thread probes the whole key space — publishes,
  // lookups and completeness marks race across all shards.  TSan-run.
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint32_t kKeysPerThread = 32;
  GlobalMemo memo;  // unlimited, kDefaultShards
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&memo, t] {
      const MemoRunStamp run = memo.begin_run();
      std::vector<std::shared_ptr<const GlobalMemoKey>> mine;
      mine.reserve(kKeysPerThread);
      for (std::uint32_t i = 0; i < kKeysPerThread; ++i) {
        const std::uint32_t id = t * kKeysPerThread + i;
        mine.push_back(std::make_shared<const GlobalMemoKey>(
            synthetic_key(id)));
        memo.publish(*mine.back(), solution_with_cost(id), run.run_id);
        // Concurrent probes over the whole space: foreign keys may or
        // may not be visible yet; visible ones must be well-formed.
        const auto seen =
            memo.lookup(synthetic_key((id * 13u) % (kThreads *
                                                    kKeysPerThread)));
        if (seen.has_value()) {
          EXPECT_TRUE(seen->has_solution());
        }
      }
      memo.mark_complete(mine, run);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // Nothing lost, everything visible, costs intact.
  EXPECT_EQ(memo.size(), kThreads * kKeysPerThread);
  for (std::uint32_t id = 0; id < kThreads * kKeysPerThread; ++id) {
    const auto found = memo.lookup(synthetic_key(id));
    ASSERT_TRUE(found.has_value()) << "key " << id;
    EXPECT_EQ(found->cost, static_cast<double>(id));
  }
  EXPECT_EQ(memo.publishes(), kThreads * kKeysPerThread);
  EXPECT_EQ(memo.evictions(), 0u);
}

TEST(MemoShardTest, StatisticsFoldExactlyUnderHammering) {
  // The per-shard relaxed counters must fold to exact totals: counts
  // are increments, only the fold order is relaxed.
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint32_t kLookups = 1000;
  GlobalMemo memo;
  const GlobalMemoKey key = synthetic_key(42);
  const auto shared = std::make_shared<const GlobalMemoKey>(key);
  const MemoRunStamp run = memo.begin_run();
  memo.publish(key, solution_with_cost(1.0), run.run_id);
  memo.mark_complete({&shared, 1}, run);
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&memo, &key] {
      for (std::uint32_t i = 0; i < kLookups; ++i) {
        ASSERT_TRUE(memo.lookup(key).has_value());
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(memo.probes(), kThreads * kLookups);
  EXPECT_EQ(memo.hits(), kThreads * kLookups);
  EXPECT_EQ(memo.publishes(), 1u);
}

}  // namespace
}  // namespace brel
