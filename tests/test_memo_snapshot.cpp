// Tests for the tier-1 memo persistence layer (memo_snapshot.hpp): the
// entry codec the snapshot format and the MEMO_PULL/MEMO_PUSH wire verbs
// share, the export policy that decides what may cross a tier boundary,
// the loader's resilience against malformed files, and the pool-level
// save-at-drain / load-at-start lifecycle.
//
// The load-bearing properties:
//   - the codec round-trips both export-policy shapes (natural at any
//     depth, root-exact) bit-identically, and REJECTS every other shape
//     — a depth-truncated interior entry cannot be smuggled across the
//     persistence boundary even by a hand-edited file;
//   - unmarked (partial/tainted) and interior-truncated entries never
//     serialize at all: the export walk skips them;
//   - a restored entry answers probes with its ORIGINAL mark — the same
//     depth-validity window as the memo that was saved;
//   - the loader never throws and never half-installs: corrupt entries
//     are skipped individually, truncation keeps the parsed prefix,
//     version or fingerprint skew installs nothing;
//   - a pool restarted from a snapshot serves the identical request
//     suite at zero exploration with bit-identical portable solutions.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/paper_relations.hpp"
#include "brel/memo_snapshot.hpp"
#include "brel/search.hpp"
#include "brel/solver_pool.hpp"
#include "relation/relation_io.hpp"

namespace brel {
namespace {

/// The schedule-independent configuration (cf. test_solver_pool.cpp).
SolverOptions deterministic_options(std::size_t max_depth) {
  SolverOptions options;
  options.cost = sum_of_bdd_sizes();
  options.max_relations = static_cast<std::size_t>(-1);
  options.use_cost_bound = false;
  options.max_depth = max_depth;
  return options;
}

/// One canonical (key, solution) pair from a real solve of `build`'s
/// relation — the entries every test below persists and restores.
struct Canonical {
  GlobalMemoKey key;
  PortableSolution solution;
};

template <typename BuildFn>
Canonical solve_canonical(BuildFn build) {
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);
  const BooleanRelation r = build(mgr, space);
  const SolveResult solved = SearchEngine(r, deterministic_options(6)).run();
  const MemoSpace ms = make_memo_space(r);
  return Canonical{make_memo_key(ms, r.characteristic()),
                   make_portable_solution(ms, solved.function, solved.cost)};
}

const MemoFingerprint kTestFp{"test-objective", false};

/// Replace the first occurrence of `from` in `text` (asserts presence —
/// a corruption that misses its target would silently test nothing).
std::string replace_once(std::string text, const std::string& from,
                         const std::string& to) {
  const std::size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << "corruption target '" << from
                                    << "' not found in snapshot";
  if (pos != std::string::npos) {
    text.replace(pos, from.size(), to);
  }
  return text;
}

/// A two-entry memo: fig1 naturally complete at `natural_depth`, fig10 as
/// a root-exact record — one of each export-policy shape.
struct TwoEntryMemo {
  GlobalMemo memo;
  Canonical natural;
  Canonical root;
};

std::unique_ptr<TwoEntryMemo> make_two_entry_memo(
    std::uint64_t natural_depth) {
  auto out = std::make_unique<TwoEntryMemo>();
  out->natural = solve_canonical(fig1_relation);
  out->root = solve_canonical(fig10_relation);
  out->memo.bind(kTestFp);
  out->memo.publish(out->natural.key, out->natural.solution);
  out->memo.publish(out->root.key, out->root.solution);
  const std::vector<MemoMark> marks{
      {std::make_shared<const GlobalMemoKey>(out->natural.key), natural_depth,
       /*truncated=*/false},
      {std::make_shared<const GlobalMemoKey>(out->root.key), 0,
       /*truncated=*/true}};
  out->memo.mark_complete(marks);
  return out;
}

std::string snapshot_text(const GlobalMemo& memo) {
  std::ostringstream os;
  const SnapshotSaveResult saved = save_memo_snapshot(memo, os, 12345);
  EXPECT_TRUE(saved.ok) << saved.error;
  return os.str();
}

SnapshotLoadResult load_text(GlobalMemo& memo, const std::string& text) {
  std::istringstream in(text);
  return load_memo_snapshot(memo, in);
}

TEST(MemoEntryCodecTest, RoundTripsBothExportShapes) {
  const Canonical c = solve_canonical(fig1_relation);
  for (const auto& [depth, root_exact] :
       std::vector<std::pair<std::uint64_t, bool>>{
           {kMemoAnyDepth, false}, {7, false}, {0, true}}) {
    MemoExportEntry entry;
    entry.key = c.key;
    entry.solution = c.solution;
    entry.complete_depth = root_exact ? 0 : depth;
    entry.root_exact = root_exact;
    std::ostringstream os;
    write_memo_entry(os, entry);
    std::istringstream in(os.str());
    const MemoExportEntry back = read_memo_entry(in);
    EXPECT_EQ(back.key, entry.key);
    EXPECT_EQ(back.solution, entry.solution);
    EXPECT_EQ(back.complete_depth, entry.complete_depth);
    EXPECT_EQ(back.root_exact, entry.root_exact);
  }
}

TEST(MemoEntryCodecTest, RejectsSmuggledTruncatedShape) {
  // The grammar has exactly two .entry shapes; a hand-crafted
  // "truncated" (or any other) shape must be rejected, not parsed into
  // some nearest-fit completeness claim.
  const Canonical c = solve_canonical(fig1_relation);
  MemoExportEntry entry;
  entry.key = c.key;
  entry.solution = c.solution;
  entry.complete_depth = 3;
  std::ostringstream os;
  write_memo_entry(os, entry);
  for (const char* smuggled : {".entry truncated", ".entry partial",
                               ".entry complete"}) {
    const std::string text =
        replace_once(os.str(), ".entry natural", smuggled);
    std::istringstream in(text);
    EXPECT_THROW((void)read_memo_entry(in), std::invalid_argument)
        << smuggled;
  }
}

TEST(MemoEntryCodecTest, RejectsChecksumMismatch) {
  const Canonical c = solve_canonical(fig1_relation);
  MemoExportEntry entry;
  entry.key = c.key;
  entry.solution = c.solution;
  std::ostringstream os;
  write_memo_entry(os, entry);
  std::string text = os.str();
  const std::size_t pos = text.find("check=");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 6] = text[pos + 6] == '0' ? '1' : '0';
  std::istringstream in(text);
  EXPECT_THROW((void)read_memo_entry(in), std::invalid_argument);
}

TEST(MemoExportPolicyTest, PartialAndInteriorTruncatedNeverSerialize) {
  // The regression the persistence design hinges on: an entry that could
  // not serve a fresh root prober in memory must not exist on disk
  // either.  Unmarked (the hard-taint case — publishes exist, no
  // completeness) and interior depth-truncated entries both stay out of
  // the export walk; the root-exact and natural entries both cross.
  const Canonical a = solve_canonical(fig1_relation);
  const Canonical b = solve_canonical(fig10_relation);
  const Canonical c = solve_canonical(fig8_relation);

  GlobalMemo memo;
  memo.bind(kTestFp);
  memo.publish(a.key, a.solution);  // never marked: partial/tainted
  memo.publish(b.key, b.solution);  // interior truncated (depth 3)
  memo.publish(c.key, c.solution);  // root-exact (truncated at depth 0)
  const std::vector<MemoMark> marks{
      {std::make_shared<const GlobalMemoKey>(b.key), 3, /*truncated=*/true},
      {std::make_shared<const GlobalMemoKey>(c.key), 0, /*truncated=*/true}};
  memo.mark_complete(marks);

  std::vector<MemoExportEntry> exported;
  memo.export_complete(
      [&](const MemoExportEntry& e) { exported.push_back(e); });
  ASSERT_EQ(exported.size(), 1u);
  EXPECT_EQ(exported[0].key, c.key);
  EXPECT_TRUE(exported[0].root_exact);
  EXPECT_FALSE(memo.export_entry(a.key).has_value());
  EXPECT_FALSE(memo.export_entry(b.key).has_value());
  EXPECT_TRUE(memo.export_entry(c.key).has_value());

  // And the snapshot of this memo contains exactly the one eligible
  // entry — the file format never even sees the other two.
  GlobalMemo fresh;
  fresh.bind(kTestFp);
  const SnapshotLoadResult loaded = load_text(fresh, snapshot_text(memo));
  EXPECT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.entries_installed, 1u);
  EXPECT_EQ(fresh.size(), 1u);
}

TEST(MemoSnapshotTest, RoundTripPreservesOriginalMarks) {
  // A restored memo must answer probes with the same depth-validity
  // window as the memo that was saved: natural-at-2 serves depths <= 2,
  // root-exact serves exactly depth 0 (as a truncated hit).
  const auto setup = make_two_entry_memo(/*natural_depth=*/2);
  GlobalMemo restored;
  restored.bind(kTestFp);
  const SnapshotLoadResult loaded =
      load_text(restored, snapshot_text(setup->memo));
  EXPECT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.entries_installed, 2u);
  EXPECT_EQ(loaded.entries_skipped, 0u);
  EXPECT_EQ(loaded.saved_at, 12345u);

  for (GlobalMemo* memo : {&setup->memo, &restored}) {
    for (std::uint64_t depth : {0u, 1u, 2u}) {
      const auto hit = memo->lookup_at(setup->natural.key, depth);
      ASSERT_TRUE(hit.has_value()) << "depth " << depth;
      EXPECT_FALSE(hit->depth_truncated);
      EXPECT_EQ(hit->solution, setup->natural.solution);
    }
    EXPECT_FALSE(memo->lookup_at(setup->natural.key, 3).has_value());

    const auto root_hit = memo->lookup_at(setup->root.key, 0);
    ASSERT_TRUE(root_hit.has_value());
    EXPECT_TRUE(root_hit->depth_truncated);
    EXPECT_EQ(root_hit->solution, setup->root.solution);
    EXPECT_FALSE(memo->lookup_at(setup->root.key, 1).has_value());
  }
}

TEST(MemoSnapshotTest, LoaderSurvivesMalformedFiles) {
  const auto setup = make_two_entry_memo(/*natural_depth=*/kMemoAnyDepth);
  const std::string intact = snapshot_text(setup->memo);

  struct Case {
    const char* name;
    std::string text;
    std::size_t min_installed, max_installed;
    bool expect_skipped;
  };
  // Cut inside the LAST entry: everything before it parses, the tail is
  // an entry without its .endentry terminator.
  const std::size_t last_entry = intact.rfind(".entry ");
  ASSERT_NE(last_entry, std::string::npos);

  const std::vector<Case> cases = {
      {"empty file", "", 0, 0, false},
      {"not a snapshot", "junk\n" + intact, 0, 0, false},
      {"version skew", replace_once(intact, "brelmemo 1", "brelmemo 9"), 0,
       0, false},
      {"truncated mid-entry", intact.substr(0, last_entry + 10), 0, 1,
       false},
      {"corrupt entry body",
       replace_once(intact, ".solution", ".garbage"), 1, 1, true},
      {"smuggled truncated shape",
       replace_once(intact, ".entry natural", ".entry truncated"), 1, 1,
       true},
      {"trailer count mismatch",
       replace_once(intact, ".endmemo 2", ".endmemo 5"), 2, 2, false},
  };

  for (const Case& c : cases) {
    GlobalMemo fresh;
    fresh.bind(kTestFp);
    SnapshotLoadResult loaded;
    EXPECT_NO_THROW(loaded = load_text(fresh, c.text)) << c.name;
    EXPECT_FALSE(loaded.ok) << c.name;
    EXPECT_FALSE(loaded.error.empty()) << c.name;
    EXPECT_GE(loaded.entries_installed, c.min_installed) << c.name;
    EXPECT_LE(loaded.entries_installed, c.max_installed) << c.name;
    if (c.expect_skipped) {
      EXPECT_GT(loaded.entries_skipped, 0u) << c.name;
    }
    EXPECT_EQ(fresh.size(), loaded.entries_installed) << c.name;
  }

  // Checksum flip: the damaged entry is skipped, the other installs.
  {
    std::string text = intact;
    const std::size_t pos = text.find("check=");
    ASSERT_NE(pos, std::string::npos);
    text[pos + 6] = text[pos + 6] == '0' ? '1' : '0';
    GlobalMemo fresh;
    fresh.bind(kTestFp);
    const SnapshotLoadResult loaded = load_text(fresh, text);
    EXPECT_FALSE(loaded.ok);
    EXPECT_EQ(loaded.entries_installed, 1u);
    EXPECT_EQ(loaded.entries_skipped, 1u);
  }

  // Fingerprint mismatch: both sides are well formed, reuse is unsound —
  // nothing installs.
  {
    GlobalMemo fresh;
    fresh.bind(MemoFingerprint{"other-objective", true});
    const SnapshotLoadResult loaded = load_text(fresh, intact);
    EXPECT_FALSE(loaded.ok);
    EXPECT_EQ(loaded.entries_installed, 0u);
    EXPECT_EQ(fresh.size(), 0u);
  }

  // An UNBOUND memo adopts the snapshot's fingerprint instead.
  {
    GlobalMemo fresh;
    const SnapshotLoadResult loaded = load_text(fresh, intact);
    EXPECT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.entries_installed, 2u);
    ASSERT_TRUE(fresh.fingerprint().has_value());
    EXPECT_EQ(*fresh.fingerprint(), kTestFp);
  }
}

TEST(MemoSnapshotPoolTest, WarmRestartServesRootHitsBitIdentical) {
  const std::string path = testing::TempDir() + "brel_pool_snapshot.memo";
  std::remove(path.c_str());

  std::vector<std::string> texts;
  for (const auto build : {fig1_relation, fig10_relation, fig8_relation}) {
    BddManager mgr{0};
    RelationSpace space = make_space(mgr, 2, 2);
    texts.push_back(write_relation_bdd(build(mgr, space)));
  }

  PoolOptions po;
  po.workers = 1;
  po.solver = deterministic_options(6);

  std::vector<PoolResult> cold;
  {
    PoolOptions save = po;
    save.memo_save_path = path;
    SolverPool pool(save);
    for (const std::string& text : texts) {
      cold.push_back(pool.submit(text).get());
      EXPECT_GT(cold.back().stats.relations_explored, 0u);
    }
    pool.shutdown();
    const MemoSnapshotInfo info = pool.snapshot_info();
    EXPECT_TRUE(info.save_attempted);
    EXPECT_TRUE(info.save_ok) << info.save_error;
    EXPECT_GE(info.entries_saved, texts.size());  // at least every root
  }
  {
    PoolOptions load = po;
    load.memo_load_path = path;
    SolverPool pool(load);
    const MemoSnapshotInfo info = pool.snapshot_info();
    EXPECT_TRUE(info.load_attempted);
    EXPECT_TRUE(info.load_ok) << info.load_error;
    EXPECT_GT(info.entries_loaded, 0u);
    EXPECT_EQ(info.entries_skipped, 0u);
    EXPECT_EQ(info.loaded_saved_at > 0, true);
    for (std::size_t i = 0; i < texts.size(); ++i) {
      const PoolResult warm = pool.submit(texts[i]).get();
      // The restored root entry serves the identical request at zero
      // exploration, bit-identically to the run that was snapshotted.
      EXPECT_EQ(warm.stats.relations_explored, 0u) << texts[i];
      EXPECT_EQ(warm.solution, cold[i].solution);
      EXPECT_EQ(warm.cost, cold[i].cost);
    }
  }

  // A restart pointed at a MISSING snapshot comes up cold, not dead.
  std::remove(path.c_str());
  {
    PoolOptions load = po;
    load.memo_load_path = path;
    SolverPool pool(load);
    const MemoSnapshotInfo info = pool.snapshot_info();
    EXPECT_TRUE(info.load_attempted);
    EXPECT_FALSE(info.load_ok);
    EXPECT_EQ(info.entries_loaded, 0u);
    const PoolResult result = pool.submit(texts[0]).get();
    EXPECT_EQ(result.solution, cold[0].solution);
  }
}

}  // namespace
}  // namespace brel
