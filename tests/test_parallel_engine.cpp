// Differential tests for the multi-worker engine (parallel_engine.hpp).
//
// The load-bearing configuration is the schedule-independent one:
// use_cost_bound=false plus a max_depth cap (or a fully drained
// frontier) makes the explored node set a pure function of the relation
// — "every node at depth <= D" — so the parallel engine must return the
// *same* solution cost as the serial BFS engine for any worker count,
// across the whole benchmark suite.  On top of that: every returned
// function must satisfy the input relation, the global budget must not
// scale with workers, a single worker must reproduce the serial engine
// exactly even in schedule-dependent configurations, and the
// coordinator must reject setups that would alias manager state.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "benchgen/paper_relations.hpp"
#include "benchgen/relation_suite.hpp"
#include "brel/parallel_engine.hpp"
#include "brel/search.hpp"
#include "relation/enumeration.hpp"

namespace brel {
namespace {

/// The schedule-independent configuration (see the header comment).
SolverOptions deterministic_options(std::size_t max_depth) {
  SolverOptions options;
  options.cost = sum_of_bdd_sizes();
  options.max_relations = static_cast<std::size_t>(-1);
  options.use_cost_bound = false;
  options.max_depth = max_depth;
  return options;
}

/// A deterministic random relation: every input vertex gets 1-3 random
/// output vertices, so the relation is total and full of non-cube
/// flexibility.  Small enough (n <= 4) that the whole depth-uncapped
/// bound-free tree drains in milliseconds.
BooleanRelation random_relation(BddManager& mgr, std::size_t n,
                                std::size_t m, std::uint32_t seed) {
  std::mt19937 rng{seed};
  const auto vertex = [&](std::uint64_t code, std::size_t width) {
    std::string text(width, '0');
    for (std::size_t i = 0; i < width; ++i) {
      if (((code >> i) & 1u) != 0) {
        text[i] = '1';
      }
    }
    return text;
  };
  std::vector<std::pair<std::string, std::vector<std::string>>> rows;
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
    std::vector<std::string> image;
    const std::size_t count = 1 + rng() % 3;
    for (std::size_t k = 0; k < count; ++k) {
      image.push_back(vertex(rng() % (std::uint64_t{1} << m), m));
    }
    rows.emplace_back(vertex(x, n), std::move(image));
  }
  const std::uint32_t first =
      mgr.add_vars(static_cast<std::uint32_t>(n + m));
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(first + static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < m; ++i) {
    outputs.push_back(first + static_cast<std::uint32_t>(n + i));
  }
  return BooleanRelation::from_table(mgr, inputs, outputs, rows);
}

TEST(ParallelEngineTest, DepthCappedCostsEqualSerialAcrossFullSuite) {
  // The acceptance bar: at 1, 2 and 4 workers the returned cost equals
  // the serial BFS incumbent on every benchmark instance, and the
  // explored-node count (a fixed set in this configuration) matches too.
  for (const RelationBenchmark& bench : relation_suite()) {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r =
        make_benchmark_relation(mgr, bench, inputs, outputs);
    SolverOptions options = deterministic_options(6);
    const SolveResult serial = SearchEngine(r, options).run();
    ASSERT_TRUE(r.is_compatible(serial.function)) << bench.name;
    for (const std::size_t workers : {1u, 2u, 4u}) {
      options.num_workers = workers;
      const SolveResult parallel = ParallelEngine(r, options).run();
      EXPECT_DOUBLE_EQ(parallel.cost, serial.cost)
          << bench.name << " at " << workers << " workers";
      EXPECT_EQ(parallel.stats.relations_explored,
                serial.stats.relations_explored)
          << bench.name << " at " << workers << " workers";
      EXPECT_TRUE(r.is_compatible(parallel.function))
          << bench.name << " at " << workers << " workers";
      EXPECT_EQ(parallel.stats.workers, workers);
      EXPECT_EQ(parallel.worker_stats.size(), workers);
    }
  }
}

TEST(ParallelEngineTest, BatchedDonationPreservesScheduleIndependence) {
  // Donation batch size only changes WHO explores a node, never WHETHER
  // it is explored: donations move already-admitted frontier items, so
  // the depth-capped explored set — and the returned cost — must be
  // invariant across every (workers, steal_batch) combination,
  // including batches far larger than the frontier ever gets.
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r = make_benchmark_relation(
      mgr, relation_suite().front(), inputs, outputs);
  SolverOptions options = deterministic_options(6);
  const SolveResult serial = SearchEngine(r, options).run();
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    for (const std::size_t batch : {1u, 4u, 16u}) {
      options.num_workers = workers;
      options.steal_batch = batch;
      const SolveResult parallel = ParallelEngine(r, options).run();
      EXPECT_DOUBLE_EQ(parallel.cost, serial.cost)
          << workers << " workers, batch " << batch;
      EXPECT_EQ(parallel.stats.relations_explored,
                serial.stats.relations_explored)
          << workers << " workers, batch " << batch;
      EXPECT_TRUE(r.is_compatible(parallel.function))
          << workers << " workers, batch " << batch;
    }
  }
}

TEST(ParallelEngineTest, DepthCappedEqualityHoldsForDfsAndBestFirst) {
  // The fixed-set argument is strategy-agnostic: any frontier order over
  // the same truncated tree sees the same solutions.
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r = make_benchmark_relation(
      mgr, relation_suite().front(), inputs, outputs);
  for (const ExplorationOrder order :
       {ExplorationOrder::DepthFirst, ExplorationOrder::BestFirst}) {
    SolverOptions options = deterministic_options(6);
    options.order = order;
    const SolveResult serial = SearchEngine(r, options).run();
    options.num_workers = 4;
    const SolveResult parallel = ParallelEngine(r, options).run();
    EXPECT_DOUBLE_EQ(parallel.cost, serial.cost);
    EXPECT_EQ(parallel.stats.relations_explored,
              serial.stats.relations_explored);
    EXPECT_TRUE(r.is_compatible(parallel.function));
  }
}

TEST(ParallelEngineTest, RandomizedDrainedDifferentialSuite) {
  // Seeded random relations small enough to drain the *un*capped
  // bound-free tree: natural completion, where the incumbent is the
  // minimum over every solution the tree can yield — again a pure
  // function of the relation.
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    BddManager mgr{0};
    const std::size_t n = 3 + seed % 2;
    const std::size_t m = 2 + seed % 2;
    const BooleanRelation r = random_relation(mgr, n, m, 7919 * seed);
    if (!r.is_well_defined()) {
      continue;  // impossible (rows cover every vertex), but be explicit
    }
    SolverOptions options =
        deterministic_options(static_cast<std::size_t>(-1));
    options.max_relations = 200000;
    const SolveResult serial = SearchEngine(r, options).run();
    ASSERT_FALSE(serial.stats.budget_exhausted)
        << "seed " << seed << " did not drain; shrink the generator";
    for (const std::size_t workers : {2u, 4u}) {
      options.num_workers = workers;
      const SolveResult parallel = ParallelEngine(r, options).run();
      EXPECT_FALSE(parallel.stats.budget_exhausted);
      EXPECT_DOUBLE_EQ(parallel.cost, serial.cost)
          << "seed " << seed << " at " << workers << " workers";
      EXPECT_TRUE(r.is_compatible(parallel.function));
    }
  }
}

TEST(ParallelEngineTest, SingleWorkerReproducesSerialEngineExactly) {
  // With one worker the machinery (tickets, shared bound, injection
  // queue) must degenerate to the serial loop — including in the
  // schedule-dependent default configuration with the cost bound on.
  for (const RelationBenchmark& bench : relation_suite()) {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r =
        make_benchmark_relation(mgr, bench, inputs, outputs);
    SolverOptions options;
    options.cost = sum_of_bdd_sizes();
    options.max_relations = 25;
    const SolveResult serial = SearchEngine(r, options).run();
    options.num_workers = 1;
    const SolveResult parallel = ParallelEngine(r, options).run();
    EXPECT_DOUBLE_EQ(parallel.cost, serial.cost) << bench.name;
    EXPECT_EQ(parallel.stats.relations_explored,
              serial.stats.relations_explored)
        << bench.name;
    EXPECT_EQ(parallel.stats.splits, serial.stats.splits) << bench.name;
    EXPECT_EQ(parallel.stats.pruned_by_cost, serial.stats.pruned_by_cost)
        << bench.name;
  }
}

TEST(ParallelEngineTest, WorkMigratesAndStatsAddUp) {
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r = make_benchmark_relation(
      mgr, relation_suite()[2], inputs, outputs);  // int3: a wide tree
  SolverOptions options = deterministic_options(8);
  options.num_workers = 4;
  const SolveResult result = ParallelEngine(r, options).run();
  EXPECT_GT(result.stats.steals, 0u) << "no subproblem ever migrated";
  ASSERT_EQ(result.worker_stats.size(), 4u);
  std::size_t explored = 0;
  std::size_t participants = 0;
  for (const SolverStats& w : result.worker_stats) {
    explored += w.relations_explored;
    participants += w.relations_explored > 0 ? 1 : 0;
  }
  EXPECT_EQ(explored, result.stats.relations_explored);
  EXPECT_GT(participants, 1u) << "work never left worker 0";
}

TEST(ParallelEngineTest, GlobalBudgetDoesNotScaleWithWorkers) {
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r =
      make_benchmark_relation(mgr, relation_suite()[2], inputs, outputs);
  SolverOptions options;
  options.cost = sum_of_bdd_sizes();
  options.max_relations = 10;
  options.num_workers = 4;
  const SolveResult result = ParallelEngine(r, options).run();
  EXPECT_LE(result.stats.relations_explored, 10u);
  EXPECT_TRUE(result.stats.budget_exhausted);
  EXPECT_TRUE(r.is_compatible(result.function));
}

TEST(ParallelEngineTest, TimeoutStopsTheFleetWithACompatibleResult) {
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r =
      make_benchmark_relation(mgr, relation_suite()[2], inputs, outputs);
  SolverOptions options = deterministic_options(static_cast<std::size_t>(-1));
  options.timeout = std::chrono::milliseconds(30);  // int3 cannot drain
  options.num_workers = 4;
  const SolveResult result = ParallelEngine(r, options).run();
  EXPECT_TRUE(result.stats.budget_exhausted);
  EXPECT_TRUE(r.is_compatible(result.function));
}

TEST(ParallelEngineTest, ShortTimeoutTerminatesAnIdleBlockedFleetPromptly) {
  // Deadline audit (see acquire_injected): a worker blocked on the
  // injection queue must notice the deadline through the timed-wait
  // heartbeat, not only between expansions.  With 8 workers on one
  // small root, most of the fleet spends the whole run blocked waiting
  // for donations — if only busy workers watched the clock, the blocked
  // ones would hang until a donation happened to arrive.  The run must
  // end promptly (heartbeat period is 20ms; allow generous slack for
  // sanitizer builds), report budget_exhausted consistently in the
  // merged stats, and still return a compatible function.
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r =
      make_benchmark_relation(mgr, relation_suite()[2], inputs, outputs);
  SolverOptions options = deterministic_options(static_cast<std::size_t>(-1));
  options.timeout = std::chrono::milliseconds(30);  // int3 cannot drain
  options.num_workers = 8;
  const auto start = std::chrono::steady_clock::now();
  const SolveResult result = ParallelEngine(r, options).run();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 10.0) << "fleet did not notice the deadline promptly";
  EXPECT_TRUE(result.stats.budget_exhausted);
  EXPECT_TRUE(r.is_compatible(result.function));
  // At least one worker recorded the exhaustion in its own stats (the
  // per-worker flag mirrors the serial engine's contract).
  bool any_worker_flagged = false;
  for (const SolverStats& w : result.worker_stats) {
    any_worker_flagged = any_worker_flagged || w.budget_exhausted;
  }
  EXPECT_TRUE(any_worker_flagged);
}

TEST(ParallelEngineTest, FreshGlobalMemoLeavesResultsUntouched) {
  // Within a single solve the memo cannot self-hit (Property 5.4), so
  // attaching an empty memo must not change the schedule-independent
  // result — serial or parallel.
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r = make_benchmark_relation(
      mgr, relation_suite().front(), inputs, outputs);
  SolverOptions plain = deterministic_options(6);
  const SolveResult reference = SearchEngine(r, plain).run();
  for (const std::size_t workers : {1u, 4u}) {
    SolverOptions with_memo = plain;
    with_memo.global_memo = std::make_shared<GlobalMemo>();
    with_memo.num_workers = workers;
    const SolveResult result = ParallelEngine(r, with_memo).run();
    EXPECT_EQ(result.stats.memo_hits, 0u) << "in-tree self-hit at "
                                          << workers << " workers";
    EXPECT_DOUBLE_EQ(result.cost, reference.cost);
    EXPECT_EQ(result.stats.relations_explored,
              reference.stats.relations_explored);
    EXPECT_TRUE(r.is_compatible(result.function));
  }
}

TEST(ParallelEngineTest, WarmGlobalMemoShortCircuitsTheWholeFleet) {
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r = make_benchmark_relation(
      mgr, relation_suite().front(), inputs, outputs);
  SolverOptions options = deterministic_options(6);
  options.global_memo = std::make_shared<GlobalMemo>();
  options.num_workers = 4;
  const SolveResult cold = ParallelEngine(r, options).run();
  // Warm: the coordinator's root probe answers before any thread spawns.
  const SolveResult warm = ParallelEngine(r, options).run();
  EXPECT_EQ(warm.stats.relations_explored, 0u);
  EXPECT_EQ(warm.stats.memo_hits, 1u);
  EXPECT_DOUBLE_EQ(warm.cost, cold.cost);
  EXPECT_TRUE(r.is_compatible(warm.function));
  // The serial engine hits the same memo: manager-independence means the
  // warm path does not care who explored first.
  options.num_workers = 1;
  const SolveResult serial_warm = SearchEngine(r, options).run();
  EXPECT_EQ(serial_warm.stats.relations_explored, 0u);
  EXPECT_DOUBLE_EQ(serial_warm.cost, cold.cost);
}

TEST(ParallelEngineTest, ExactModeMatchesEnumeratedOptimum) {
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);
  for (const BooleanRelation& r : {fig1_relation(mgr, space),
                                   fig10_relation(mgr, space),
                                   fig8_relation(mgr, space)}) {
    const ExactOptimum truth = exact_optimum(r, sum_of_bdd_sizes());
    SolverOptions options;
    options.exact = true;
    options.cost = sum_of_bdd_sizes();
    options.num_workers = 2;
    const SolveResult result = ParallelEngine(r, options).run();
    EXPECT_DOUBLE_EQ(result.cost, truth.cost);
    EXPECT_TRUE(r.is_compatible(result.function));
  }
}

TEST(ParallelEngineTest, FacadeDispatchesOnWorkerCount) {
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);
  const BooleanRelation r = fig10_relation(mgr, space);
  SolverOptions options;
  options.num_workers = 2;
  const SolveResult parallel = BrelSolver(options).solve(r);
  EXPECT_EQ(parallel.stats.workers, 2u);
  EXPECT_EQ(parallel.worker_stats.size(), 2u);
  options.num_workers = 1;
  const SolveResult serial = BrelSolver(options).solve(r);
  EXPECT_EQ(serial.stats.workers, 1u);
  EXPECT_TRUE(serial.worker_stats.empty());
}

TEST(ParallelEngineTest, ResolvesWorkerCounts) {
  EXPECT_GE(resolve_worker_count(0), 1u);
  EXPECT_EQ(resolve_worker_count(3), 3u);
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);
  const BooleanRelation r = fig1_relation(mgr, space);
  SolverOptions options;
  options.num_workers = 3;
  EXPECT_EQ(ParallelEngine(r, options).worker_count(), 3u);
}

TEST(ParallelEngineTest, RejectsSharedSubproblemCache) {
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);
  const BooleanRelation r = fig1_relation(mgr, space);
  SolverOptions options;
  options.num_workers = 2;
  options.subproblem_cache = std::make_shared<SubproblemCache>();
  EXPECT_THROW(ParallelEngine(r, options), std::invalid_argument);
  // Worker-private caches are the supported spelling...
  options.subproblem_cache = nullptr;
  options.use_subproblem_cache = true;
  const SolveResult result = ParallelEngine(r, options).run();
  EXPECT_TRUE(r.is_compatible(result.function));
  // ...and in-tree duplicates stay impossible under migration
  // (Property 5.4 holds for the union of the workers' sub-forests).
  EXPECT_EQ(result.stats.pruned_by_cache, 0u);
}

TEST(ParallelEngineTest, RejectsIllDefinedRelation) {
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);
  const BooleanRelation r = fig1_relation(mgr, space);
  const BooleanRelation broken = r.constrain_with(
      !(mgr.literal(space.inputs[0], true) &
        mgr.literal(space.inputs[1], false)));
  SolverOptions options;
  options.num_workers = 2;
  EXPECT_THROW(ParallelEngine(broken, options), std::invalid_argument);
}

TEST(ParallelEngineTest, PropagatesCostFunctionFailures) {
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r = make_benchmark_relation(
      mgr, relation_suite().front(), inputs, outputs);
  SolverOptions options = deterministic_options(6);
  options.num_workers = 2;
  options.cost = [](const MultiFunction&) -> double {
    throw std::runtime_error("cost function exploded");
  };
  EXPECT_THROW((void)ParallelEngine(r, options).run(), std::runtime_error);
}

}  // namespace
}  // namespace brel
