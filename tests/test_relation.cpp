// Unit tests for the Boolean relation layer: well-definedness, projection,
// MISF covering, compatibility, Split, totalization.

#include <gtest/gtest.h>

#include "benchgen/paper_relations.hpp"
#include "relation/enumeration.hpp"
#include "relation/relation.hpp"

namespace brel {
namespace {

class RelationTest : public ::testing::Test {
 protected:
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);

  BooleanRelation fig1() { return fig1_relation(mgr, space); }
  BooleanRelation fig10() { return fig10_relation(mgr, space); }

  std::vector<bool> vertex(bool x1, bool x2) {
    std::vector<bool> v(mgr.num_vars(), false);
    v[space.inputs[0]] = x1;
    v[space.inputs[1]] = x2;
    return v;
  }
};

TEST_F(RelationTest, FromTableImagesMatch) {
  const BooleanRelation r = fig1();
  EXPECT_EQ(r.image_of(vertex(false, false)), (std::set<std::uint64_t>{0b00}));
  EXPECT_EQ(r.image_of(vertex(false, true)),
            (std::set<std::uint64_t>{0b10}));  // "01" = y1=0,y2=1 -> bit1 set
  EXPECT_EQ(r.image_of(vertex(true, false)),
            (std::set<std::uint64_t>{0b00, 0b11}));
  EXPECT_EQ(r.image_of(vertex(true, true)),
            (std::set<std::uint64_t>{0b01, 0b11}));
}

TEST_F(RelationTest, WellDefinedChecks) {
  EXPECT_TRUE(fig1().is_well_defined());
  // Removing every pair for one input vertex breaks left-totality.
  const BooleanRelation r = fig1();
  const Bdd x10 = mgr.literal(space.inputs[0], true) &
                  mgr.literal(space.inputs[1], false);
  const BooleanRelation broken = r.constrain_with(!x10);
  EXPECT_FALSE(broken.is_well_defined());
  EXPECT_TRUE(broken.input_domain() == !x10);
}

TEST_F(RelationTest, TotalizedRestoresLeftTotality) {
  const BooleanRelation r = fig1();
  const Bdd x10 = mgr.literal(space.inputs[0], true) &
                  mgr.literal(space.inputs[1], false);
  const BooleanRelation broken = r.constrain_with(!x10);
  const BooleanRelation fixed = broken.totalized();
  EXPECT_TRUE(fixed.is_well_defined());
  // Outside the hole the relation is unchanged.
  EXPECT_EQ(fixed.image_of(vertex(false, false)),
            r.image_of(vertex(false, false)));
  // Inside the hole every output vertex is allowed.
  EXPECT_EQ(fixed.image_of(vertex(true, false)).size(), 4u);
}

TEST_F(RelationTest, FullRelationIsWellDefinedButNotFunction) {
  const BooleanRelation r =
      BooleanRelation::full(mgr, space.inputs, space.outputs);
  EXPECT_TRUE(r.is_well_defined());
  EXPECT_FALSE(r.is_function());
}

TEST_F(RelationTest, FunctionalRelationRoundTrip) {
  // Build the relation of the function (y1 ⇔ x1, y2 ⇔ x1 ^ x2).
  const Bdd x1 = mgr.var(space.inputs[0]);
  const Bdd x2 = mgr.var(space.inputs[1]);
  MultiFunction f;
  f.outputs = {x1, x1 ^ x2};
  const BooleanRelation any =
      BooleanRelation::full(mgr, space.inputs, space.outputs);
  const BooleanRelation rf =
      any.constrain_with(any.function_characteristic(f));
  EXPECT_TRUE(rf.is_well_defined());
  EXPECT_TRUE(rf.is_function());
  const MultiFunction g = rf.extract_function();
  EXPECT_TRUE(g.outputs[0] == f.outputs[0]);
  EXPECT_TRUE(g.outputs[1] == f.outputs[1]);
}

TEST_F(RelationTest, ExtractFunctionRejectsNonFunction) {
  EXPECT_THROW((void)fig1().extract_function(), std::logic_error);
}

TEST_F(RelationTest, ProjectionsMatchExample51) {
  // Example 5.1/5.3: the projections of the Fig. 1 relation produce the
  // ISFs whose minimization yields (y1 ⇔ x1)(y2 ⇔ x2).
  const BooleanRelation r = fig1();
  const Bdd x1 = mgr.var(space.inputs[0]);
  const Bdd x2 = mgr.var(space.inputs[1]);

  const Isf p1 = r.project_output(0);
  // y1: forced 1 at 11; free at 10; forced 0 at 00, 01.
  EXPECT_TRUE(p1.on() == (x1 & x2));
  EXPECT_TRUE(p1.dc() == (x1 & !x2));
  EXPECT_TRUE(p1.off() == !x1);

  const Isf p2 = r.project_output(1);
  // y2: forced 1 at 01; free at 10 and 11; forced 0 at 00.
  EXPECT_TRUE(p2.on() == ((!x1) & x2));
  EXPECT_TRUE(p2.dc() == x1);
  EXPECT_TRUE(p2.off() == ((!x1) & !x2));
}

TEST_F(RelationTest, MisfCoversRelationProperty52) {
  for (const BooleanRelation& r : {fig1(), fig10()}) {
    const BooleanRelation m = r.misf();
    EXPECT_TRUE(r.characteristic().subset_of(m.characteristic()));
  }
}

TEST_F(RelationTest, MisfExpandsNonCubeImages) {
  // Example 5.2: MISF_R expands R(10) = {00, 11} to all four vertices.
  const BooleanRelation m = fig1().misf();
  EXPECT_EQ(m.image_of(vertex(true, false)).size(), 4u);
  // The don't-care-expressible image {10, 11} of vertex 11 stays put.
  EXPECT_EQ(m.image_of(vertex(true, true)),
            (std::set<std::uint64_t>{0b01, 0b11}));
}

TEST_F(RelationTest, MisfIsIdempotent) {
  const BooleanRelation m = fig1().misf();
  EXPECT_TRUE(m.is_misf());
  EXPECT_TRUE(m.misf() == m);
  EXPECT_FALSE(fig1().is_misf());
}

TEST_F(RelationTest, CompatibilityExample42) {
  // Example 4.2/5.4: (y1 ⇔ x1)(y2 ⇔ x2) has exactly the conflict (10, 10).
  const BooleanRelation r = fig1();
  MultiFunction f;
  f.outputs = {mgr.var(space.inputs[0]), mgr.var(space.inputs[1])};
  EXPECT_FALSE(r.is_compatible(f));
  const Bdd incomp = r.incompatibilities(f);
  const Bdd expected = mgr.literal(space.inputs[0], true) &
                       mgr.literal(space.inputs[1], false) &
                       mgr.literal(space.outputs[0], true) &
                       mgr.literal(space.outputs[1], false);
  EXPECT_TRUE(incomp == expected);
}

TEST_F(RelationTest, CompatibleFunctionAccepted) {
  // 00->00, 01->01, 10->00, 11->11: pick y1 = x1 x2, y2 = x2.
  const BooleanRelation r = fig1();
  MultiFunction f;
  f.outputs = {mgr.var(space.inputs[0]) & mgr.var(space.inputs[1]),
               mgr.var(space.inputs[1])};
  EXPECT_TRUE(r.is_compatible(f));
  EXPECT_TRUE(r.incompatibilities(f).is_zero());
}

TEST_F(RelationTest, SplitExample55) {
  // Split(R, 10, y1): images of vertex 10 become {00} and {11}.
  const BooleanRelation r = fig1();
  const auto [r0, r1] = r.split(vertex(true, false), 0);
  EXPECT_EQ(r0.image_of(vertex(true, false)), (std::set<std::uint64_t>{0b00}));
  EXPECT_EQ(r1.image_of(vertex(true, false)), (std::set<std::uint64_t>{0b11}));
  // All other vertices keep their images.
  for (const auto& v : {vertex(false, false), vertex(false, true),
                        vertex(true, true)}) {
    EXPECT_EQ(r0.image_of(v), r.image_of(v));
    EXPECT_EQ(r1.image_of(v), r.image_of(v));
  }
  // Both halves stay well defined and strictly shrink (Theorem 5.2).
  EXPECT_TRUE(r.can_split(vertex(true, false), 0));
  EXPECT_TRUE(r0.is_well_defined());
  EXPECT_TRUE(r1.is_well_defined());
  EXPECT_TRUE(r0.characteristic().subset_of(r.characteristic()));
  EXPECT_TRUE(r1.characteristic().subset_of(r.characteristic()));
  EXPECT_FALSE(r0.characteristic() == r.characteristic());
  EXPECT_FALSE(r1.characteristic() == r.characteristic());
}

TEST_F(RelationTest, SplitUnionRestoresRelation) {
  const BooleanRelation r = fig1();
  const auto [r0, r1] = r.split(vertex(true, false), 0);
  EXPECT_TRUE((r0.characteristic() | r1.characteristic()) ==
              r.characteristic());
}

TEST_F(RelationTest, SplitExample56FailsTheorem52Guard) {
  // Splitting vertex 11 on y1 is invalid: y1 is forced to 1 there.
  const BooleanRelation r = fig1();
  EXPECT_FALSE(r.can_split(vertex(true, true), 0));
  const auto [r0, r1] = r.split(vertex(true, true), 0);
  // r0 (forcing y1(11) = 0) loses left-totality; r1 equals R.
  EXPECT_FALSE(r0.is_well_defined());
  EXPECT_TRUE(r1.characteristic() == r.characteristic());
}

TEST_F(RelationTest, SplitPartitionsCompatibleFunctionsProperty54) {
  // Property 5.4: IF(R) = IF(R0) ⊎ IF(R1).
  const BooleanRelation r = fig1();
  const auto [r0, r1] = r.split(vertex(true, false), 0);
  const double whole = count_compatible_functions(r);
  const double part0 = count_compatible_functions(r0);
  const double part1 = count_compatible_functions(r1);
  EXPECT_DOUBLE_EQ(whole, part0 + part1);
  // Disjointness: no function can be compatible with both halves.
  std::uint64_t overlap = 0;
  enumerate_compatible_functions(r0, [&](const MultiFunction& f) {
    if (r1.is_compatible(f)) {
      ++overlap;
    }
    return true;
  });
  EXPECT_EQ(overlap, 0u);
}

TEST_F(RelationTest, EnumerationCountsFig1) {
  // |IF(R)| = 1 * 1 * 2 * 2 = 4 for the Fig. 1 relation.
  EXPECT_DOUBLE_EQ(count_compatible_functions(fig1()), 4.0);
  std::uint64_t seen = 0;
  enumerate_compatible_functions(fig1(), [&](const MultiFunction& f) {
    EXPECT_TRUE(fig1().is_compatible(f));
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 4u);
}

TEST_F(RelationTest, EnumerationCountsFig10) {
  // The Fig. 10 relation has exactly eight compatible functions (Sec. 9.1).
  EXPECT_DOUBLE_EQ(count_compatible_functions(fig10()), 8.0);
}

TEST_F(RelationTest, EnumerationOfIllDefinedRelationIsEmpty) {
  const BooleanRelation r = fig1();
  const Bdd x10 = mgr.literal(space.inputs[0], true) &
                  mgr.literal(space.inputs[1], false);
  const BooleanRelation broken = r.constrain_with(!x10);
  std::uint64_t seen = 0;
  const std::uint64_t visited = enumerate_compatible_functions(
      broken, [&](const MultiFunction&) {
        ++seen;
        return true;
      });
  EXPECT_EQ(seen, 0u);
  EXPECT_EQ(visited, 0u);
}

TEST_F(RelationTest, ExactOptimumFindsCheapestFunction) {
  // Under cube-free cost = total BDD size, the optimum of Fig. 10 is the
  // balanced pair (x ⇔ !b)(y ⇔ !a).
  const BooleanRelation r = fig10();
  const auto cost = [](const MultiFunction& f) {
    double total = 0.0;
    for (const Bdd& g : f.outputs) {
      const double s = static_cast<double>(g.size());
      total += s * s;  // sum of squares favours balance
    }
    return total;
  };
  const ExactOptimum best = exact_optimum(r, cost);
  EXPECT_EQ(best.explored, 8u);
  const Bdd a = mgr.var(space.inputs[0]);
  const Bdd b = mgr.var(space.inputs[1]);
  EXPECT_TRUE(best.function.outputs[0] == !b);
  EXPECT_TRUE(best.function.outputs[1] == !a);
}

TEST_F(RelationTest, LatticeOperationsProperty51) {
  // (R, ⊆) is a lattice with union/intersection (Property 5.1).
  const BooleanRelation r = fig1();
  const BooleanRelation s = fig10();  // same spaces, different relation
  const BooleanRelation top =
      BooleanRelation::full(mgr, space.inputs, space.outputs);
  const BooleanRelation meet = r.intersect_with(s);
  const BooleanRelation join = r.union_with(s);
  // Order embedding.
  EXPECT_TRUE(meet.subset_of(r));
  EXPECT_TRUE(meet.subset_of(s));
  EXPECT_TRUE(r.subset_of(join));
  EXPECT_TRUE(s.subset_of(join));
  EXPECT_TRUE(join.subset_of(top));
  // Lattice laws.
  EXPECT_TRUE(r.intersect_with(r) == r);                  // idempotence
  EXPECT_TRUE(r.union_with(r) == r);
  EXPECT_TRUE(r.intersect_with(s) == s.intersect_with(r));  // commutativity
  EXPECT_TRUE(r.union_with(s) == s.union_with(r));
  EXPECT_TRUE(r.union_with(meet) == r);                   // absorption
  EXPECT_TRUE(r.intersect_with(join) == r);
  // Well-defined relations form a join-semilattice (Theorem 5.1): the
  // union of well-defined relations is well defined...
  EXPECT_TRUE(join.is_well_defined());
  // ...but the meet may not be (nothing guarantees left-totality).
  EXPECT_FALSE(meet.is_well_defined());
}

TEST_F(RelationTest, LatticeOperationsRejectMismatchedSpaces) {
  const BooleanRelation r = fig1();
  const RelationSpace other_space = make_space(mgr, 2, 2);
  const BooleanRelation other = fig1_relation(mgr, other_space);
  EXPECT_THROW((void)r.intersect_with(other), std::invalid_argument);
  EXPECT_THROW((void)r.union_with(other), std::invalid_argument);
  EXPECT_THROW((void)r.subset_of(other), std::invalid_argument);
}

TEST_F(RelationTest, MixedVariablesRejected) {
  EXPECT_THROW(BooleanRelation(mgr, {space.inputs[0], space.inputs[0]},
                               space.outputs, mgr.one()),
               std::invalid_argument);
}

TEST_F(RelationTest, ToTableRoundTrip) {
  const std::string table = fig1().to_table();
  EXPECT_NE(table.find("10 : {00, 11}"), std::string::npos);
  EXPECT_NE(table.find("11 : {10, 11}"), std::string::npos);
}

TEST_F(RelationTest, IsfEliminateVarMatchesDefinition) {
  // Non-essential variable elimination (Sec. 7.5).
  const Bdd x1 = mgr.var(space.inputs[0]);
  const Bdd x2 = mgr.var(space.inputs[1]);
  // ON = x1 x2, DC = x1 !x2: x2 is non-essential (interval [x1·x2, x1]).
  const Isf isf(x1 & x2, x1 & !x2);
  EXPECT_TRUE(isf.can_eliminate_var(space.inputs[1]));
  const Isf reduced = isf.eliminate_var(space.inputs[1]);
  EXPECT_TRUE(reduced.on() == x1);
  EXPECT_TRUE(reduced.dc().is_zero());
  // x1 is essential: eliminating it would make ON exceed MAX.
  EXPECT_FALSE(isf.can_eliminate_var(space.inputs[0]));
  EXPECT_THROW((void)isf.eliminate_var(space.inputs[0]), std::logic_error);
}

TEST_F(RelationTest, IsfInvariants) {
  const Bdd x1 = mgr.var(space.inputs[0]);
  EXPECT_THROW(Isf(x1, x1), std::invalid_argument);  // ON ∧ DC != 0
  const Isf isf(x1, !x1);
  EXPECT_TRUE(isf.off().is_zero());
  EXPECT_TRUE(isf.max().is_one());
  EXPECT_TRUE(isf.contains(mgr.one()));
  EXPECT_TRUE(isf.contains(x1));
  EXPECT_FALSE(isf.contains(!x1));
  EXPECT_FALSE(Isf::exact(x1).contains(mgr.one()));
  EXPECT_TRUE(Isf::exact(x1).is_completely_specified());
}

}  // namespace
}  // namespace brel
