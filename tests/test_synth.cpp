// Tests for the mini-synthesis substrate: algebraic factoring and the
// 2-input gate-network mapping with its area/delay model.

#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd.hpp"
#include "synth/factor.hpp"
#include "synth/gate_network.hpp"

namespace brel {
namespace {

std::vector<bool> point_of(std::uint32_t index, std::size_t width) {
  std::vector<bool> point(width);
  for (std::size_t j = 0; j < width; ++j) {
    point[j] = ((index >> j) & 1u) != 0;
  }
  return point;
}

TEST(FactorTest, ConstantsAndSingleCubes) {
  EXPECT_EQ(algebraic_factor(Cover(3)).kind, FactorTree::Kind::ConstZero);
  EXPECT_EQ(algebraic_factor(Cover::parse(3, {"---"})).kind,
            FactorTree::Kind::ConstOne);
  const FactorTree lit = algebraic_factor(Cover::parse(3, {"-1-"}));
  EXPECT_EQ(lit.kind, FactorTree::Kind::Literal);
  EXPECT_EQ(lit.var, 1u);
  EXPECT_TRUE(lit.positive);
  const FactorTree cube = algebraic_factor(Cover::parse(3, {"10-"}));
  EXPECT_EQ(cube.kind, FactorTree::Kind::And);
  EXPECT_EQ(cube.literal_count(), 2u);
}

TEST(FactorTest, SharesMostFrequentLiteral) {
  // ab + ac + d factors as a(b + c) + d: 4 literals instead of 5.
  const Cover cover = Cover::parse(4, {"11--", "1-1-", "---1"});
  const FactorTree tree = algebraic_factor(cover);
  EXPECT_EQ(tree.literal_count(), 4u);
}

TEST(FactorTest, FactoredFormIsEquivalentToCover) {
  std::mt19937 rng{11};
  for (int iter = 0; iter < 20; ++iter) {
    Cover cover(4);
    const std::size_t cubes = 1 + rng() % 5;
    for (std::size_t c = 0; c < cubes; ++c) {
      Cube cube(4);
      for (std::size_t v = 0; v < 4; ++v) {
        const std::uint32_t r = rng() % 3;
        cube.set_lit(v, r == 0 ? Lit::Zero
                               : (r == 1 ? Lit::One : Lit::DontCare));
      }
      cover.add_cube(std::move(cube));
    }
    const FactorTree tree = algebraic_factor(cover);
    for (std::uint32_t i = 0; i < 16; ++i) {
      const std::vector<bool> point = point_of(i, 4);
      EXPECT_EQ(tree.eval(point), cover.contains_point(point));
    }
    EXPECT_LE(tree.literal_count(), cover.literal_count());
  }
}

TEST(FactorTest, ToStringReadable) {
  const Cover cover = Cover::parse(3, {"11-", "1-1"});
  const FactorTree tree = algebraic_factor(cover);
  const std::string text = tree.to_string({"a", "b", "c"});
  EXPECT_EQ(text, "a (b + c)");
}

TEST(GateNetworkTest, MapsConstantsAndLiterals) {
  const GateNetwork zero =
      GateNetwork::map({algebraic_factor(Cover(2))});
  EXPECT_DOUBLE_EQ(zero.area(), 0.0);
  EXPECT_DOUBLE_EQ(zero.depth(), 0.0);
  EXPECT_FALSE(zero.eval(0, {false, false}));

  const GateNetwork lit =
      GateNetwork::map({algebraic_factor(Cover::parse(2, {"0-"}))});
  EXPECT_DOUBLE_EQ(lit.area(), 1.0);  // one inverter
  EXPECT_DOUBLE_EQ(lit.depth(), 0.0);
  EXPECT_TRUE(lit.eval(0, {false, false}));
  EXPECT_FALSE(lit.eval(0, {true, false}));
}

TEST(GateNetworkTest, BalancedTreeDepth) {
  // An 8-input AND maps to depth 3 with 7 AND2 gates.
  Cube cube(8);
  for (std::size_t v = 0; v < 8; ++v) {
    cube.set_lit(v, Lit::One);
  }
  Cover cover(8);
  cover.add_cube(cube);
  const GateNetwork network = GateNetwork::map({algebraic_factor(cover)});
  EXPECT_DOUBLE_EQ(network.depth(), 3.0);
  EXPECT_DOUBLE_EQ(network.area(), 14.0);
}

TEST(GateNetworkTest, EvalMatchesFactoredForm) {
  std::mt19937 rng{23};
  for (int iter = 0; iter < 10; ++iter) {
    Cover cover(4);
    const std::size_t cubes = 1 + rng() % 4;
    for (std::size_t c = 0; c < cubes; ++c) {
      Cube cube(4);
      for (std::size_t v = 0; v < 4; ++v) {
        const std::uint32_t r = rng() % 3;
        cube.set_lit(v, r == 0 ? Lit::Zero
                               : (r == 1 ? Lit::One : Lit::DontCare));
      }
      cover.add_cube(std::move(cube));
    }
    const FactorTree tree = algebraic_factor(cover);
    const GateNetwork network = GateNetwork::map({tree});
    for (std::uint32_t i = 0; i < 16; ++i) {
      const std::vector<bool> point = point_of(i, 4);
      EXPECT_EQ(network.eval(0, point), tree.eval(point));
    }
  }
}

TEST(GateNetworkTest, MultiOutputDepthIsWorstCase) {
  const FactorTree deep = algebraic_factor(
      Cover::parse(4, {"1111"}));  // depth 2 (four-input AND)
  const FactorTree shallow = algebraic_factor(Cover::parse(4, {"1---"}));
  const GateNetwork network = GateNetwork::map({deep, shallow});
  EXPECT_DOUBLE_EQ(network.depth(), 2.0);
  EXPECT_EQ(network.output_gates().size(), 2u);
}

TEST(GateNetworkTest, SummaryMentionsCounts) {
  const GateNetwork network =
      GateNetwork::map({algebraic_factor(Cover::parse(2, {"11", "00"}))});
  const std::string text = network.summary();
  EXPECT_NE(text.find("area="), std::string::npos);
  EXPECT_NE(text.find("depth="), std::string::npos);
}

TEST(ScoreFunctionsTest, ScoresMatchManualPipeline) {
  BddManager mgr{4};
  const std::vector<std::uint32_t> vars{0, 1, 2, 3};
  const Bdd f = (mgr.var(0) & mgr.var(1)) | (mgr.var(0) & mgr.var(2));
  const NetworkScore score = score_functions({f}, vars);
  // ISOP gives 2 cubes / 4 literals; factoring shares the 'a': 3 literals.
  EXPECT_EQ(score.sop_cubes, 2u);
  EXPECT_EQ(score.sop_literals, 4u);
  EXPECT_EQ(score.factored_literals, 3u);
  EXPECT_GT(score.area, 0.0);
  EXPECT_GT(score.depth, 0.0);
}

TEST(ScoreFunctionsTest, ConstantFunctionScoresZero) {
  BddManager mgr{2};
  const NetworkScore score = score_functions({mgr.one()}, {0, 1});
  EXPECT_DOUBLE_EQ(score.area, 0.0);
  EXPECT_DOUBLE_EQ(score.depth, 0.0);
  EXPECT_EQ(score.factored_literals, 0u);
}

}  // namespace
}  // namespace brel
