// Cross-module integration tests: the full pipelines the benches rely on,
// checked end to end for semantic preservation.

#include <gtest/gtest.h>

#include "benchgen/fsm_suite.hpp"
#include "benchgen/relation_suite.hpp"
#include "brel/solver.hpp"
#include "decomp/decompose.hpp"
#include "decomp/mux_latch.hpp"
#include "equations/equations.hpp"
#include "gyocro/gyocro.hpp"
#include "relation/relation_io.hpp"
#include "synth/gate_network.hpp"

namespace brel {
namespace {

/// The Table 2 scoring pipeline (BDD -> ISOP -> projected cover ->
/// factored form -> mapped gate network) must preserve every function's
/// semantics point by point.
TEST(IntegrationTest, ScorePipelinePreservesSemantics) {
  const RelationBenchmark& bench = relation_suite()[1];  // int2: 5 in, 3 out
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r =
      make_benchmark_relation(mgr, bench, inputs, outputs);
  const SolveResult solved = BrelSolver().solve(r);

  // Rebuild the exact artifacts score_functions() uses.
  std::vector<FactorTree> trees;
  for (const Bdd& f : solved.function.outputs) {
    const IsopResult isop = mgr.isop(f, f);
    Cover cover(inputs.size());
    for (const Cube& cube : isop.cover.cubes()) {
      Cube projected(inputs.size());
      for (std::size_t k = 0; k < inputs.size(); ++k) {
        projected.set_lit(k, cube.lit(inputs[k]));
      }
      cover.add_cube(projected);
    }
    trees.push_back(algebraic_factor(cover));
  }
  const GateNetwork network = GateNetwork::map(trees);

  // Every function, every input point: BDD == factored form == network.
  const std::size_t n = inputs.size();
  for (std::uint64_t code = 0; code < (std::uint64_t{1} << n); ++code) {
    std::vector<bool> manager_point(mgr.num_vars(), false);
    std::vector<bool> local_point(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      const bool bit = ((code >> i) & 1u) != 0;
      manager_point[inputs[i]] = bit;
      local_point[i] = bit;
    }
    for (std::size_t o = 0; o < solved.function.outputs.size(); ++o) {
      const bool expected = solved.function.outputs[o].eval(manager_point);
      EXPECT_EQ(trees[o].eval(local_point), expected);
      EXPECT_EQ(network.eval(o, local_point), expected);
    }
  }
}

/// Decomposition with different symmetric gates: AND3, OR3, XOR3, MUX.
TEST(IntegrationTest, DecompositionWithVariousGates) {
  BddManager mgr{0};
  const std::uint32_t x = mgr.add_vars(4);
  const std::vector<std::uint32_t> inputs{x, x + 1, x + 2, x + 3};
  const Bdd f = (mgr.var(x) & mgr.var(x + 1)) ^ (mgr.var(x + 2) |
                                                 !mgr.var(x + 3));
  SolverOptions options;
  options.max_relations = 60;

  struct GateSpec {
    const char* name;
    std::function<Bdd(const Bdd&, const Bdd&, const Bdd&)> make;
    bool always_decomposable;
  };
  const std::vector<GateSpec> gates{
      {"xor3", [](const Bdd& a, const Bdd& b, const Bdd& c) {
         return a ^ b ^ c;
       }, true},
      {"mux", [](const Bdd& a, const Bdd& b, const Bdd& c) {
         return mux_gate(a, b, c);
       }, true},
      {"and3", [](const Bdd& a, const Bdd& b, const Bdd& c) {
         return a & b & c;
       }, true},  // F = G(F, 1, 1) always exists
      {"or3", [](const Bdd& a, const Bdd& b, const Bdd& c) {
         return a | b | c;
       }, true},  // F = G(F, 0, 0)
  };
  for (const GateSpec& spec : gates) {
    const std::uint32_t yv = mgr.add_vars(3);
    const std::vector<std::uint32_t> abc{yv, yv + 1, yv + 2};
    const Bdd gate = spec.make(mgr.var(yv), mgr.var(yv + 1),
                               mgr.var(yv + 2));
    const BooleanRelation r = decomposition_relation(f, inputs, gate, abc);
    EXPECT_TRUE(r.is_well_defined()) << spec.name;
    const Decomposition d =
        decompose(f, inputs, gate, abc, BrelSolver(options));
    EXPECT_TRUE(verify_decomposition(f, gate, abc, d.branches)) << spec.name;
  }
}

/// Relation -> file -> relation -> solve -> functional relation -> file:
/// the full serialization loop preserves solutions.
TEST(IntegrationTest, FileRoundTripThroughSolver) {
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r = make_benchmark_relation(
      mgr, relation_suite()[0], inputs, outputs);  // int1: 4 in, 3 out
  const std::string text = write_relation(r);

  BddManager fresh{0};
  const BooleanRelation parsed = read_relation(fresh, text);
  const SolveResult solved = BrelSolver().solve(parsed);
  EXPECT_TRUE(parsed.is_compatible(solved.function));

  const BooleanRelation functional =
      parsed.constrain_with(parsed.function_characteristic(solved.function));
  EXPECT_TRUE(functional.is_function());
  // A functional relation serializes to one output vertex per row.
  BddManager final_mgr{0};
  const BooleanRelation again =
      read_relation(final_mgr, write_relation(functional));
  EXPECT_TRUE(again.is_function());
}

/// Equations built from a solved relation: asserting Y = F(X) as a system
/// must be consistent with the unique solution F.
TEST(IntegrationTest, SolvedRelationBecomesEquationSystem) {
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r = make_benchmark_relation(
      mgr, relation_suite()[11], inputs, outputs);  // vtx: 5 in, 2 out
  const SolveResult solved = BrelSolver().solve(r);

  BoolEquationSystem sys(mgr, inputs, outputs);
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    sys.add_equation(mgr.var(outputs[i]), solved.function.outputs[i]);
  }
  ASSERT_TRUE(sys.is_consistent());
  EXPECT_TRUE(sys.is_solution(solved.function));
  const BooleanRelation from_sys = sys.to_relation();
  EXPECT_TRUE(from_sys.is_function());
}

/// The mux-latch flow applied to one FSM instance end-to-end, with the
/// decomposition of every flip-flop verified by composition.
TEST(IntegrationTest, MuxLatchFlowOnFsmInstance) {
  BddManager mgr{0};
  const FsmInstance instance = make_fsm_instance(mgr, fsm_suite()[0]);
  SolverOptions options;
  options.cost = sum_of_squared_bdd_sizes();
  options.max_relations = 30;
  const BrelSolver solver(options);
  for (const Bdd& f : instance.next_state) {
    const MuxLatchResult result =
        mux_latch_decompose(f, instance.support, solver);
    EXPECT_TRUE(result.verified);
    EXPECT_GE(result.baseline.area, 0.0);
  }
}

/// All three solvers agree that their solutions are compatible and the
/// cost ordering quick >= brel holds under the solver's own objective.
TEST(IntegrationTest, SolverHierarchyOnSuiteInstances) {
  for (const std::size_t index : {0u, 5u, 13u}) {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r = make_benchmark_relation(
        mgr, relation_suite()[index], inputs, outputs);
    const CostFunction cost = sum_of_bdd_sizes();
    const double quick_cost = cost(quick_solve(r));
    SolverOptions options;
    options.max_relations = 20;
    const SolveResult brel = BrelSolver(options).solve(r);
    EXPECT_LE(brel.cost, quick_cost);
    const GyocroResult gyocro = GyocroSolver().solve(r);
    EXPECT_TRUE(r.is_compatible(gyocro.function));
  }
}

}  // namespace
}  // namespace brel
