// Tests for the solver-pool service layer (solver_pool.hpp) and the
// manager-independent cross-solve memo underneath it (global_memo.hpp).
//
// The load-bearing properties:
//   - canonical keys: the same relation produces byte-identical memo
//     keys in any manager at any variable offset;
//   - pool results are bit-identical (rank-mapped serialized outputs,
//     not just costs) to the serial engine in the schedule-independent
//     configuration, at 1, 2 and 4 workers;
//   - a warm re-solve of an identical relation is served by the memo at
//     zero exploration while returning the cold run's cost;
//   - concurrent submission from many threads is safe (this file is part
//     of the TSan CI job);
//   - memo capacity drops new keys but still lands improvements to
//     present keys, and mismatched fingerprint reuse is rejected.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/paper_relations.hpp"
#include "benchgen/relation_suite.hpp"
#include "brel/search.hpp"
#include "brel/solver_pool.hpp"
#include "relation/relation_io.hpp"

namespace brel {
namespace {

/// The schedule-independent configuration (cf. test_parallel_engine.cpp):
/// no cost bound plus a depth cap makes the explored set — and with the
/// deterministic serial engine, the returned function — a pure function
/// of the relation.
SolverOptions deterministic_options(std::size_t max_depth) {
  SolverOptions options;
  options.cost = sum_of_bdd_sizes();
  options.max_relations = static_cast<std::size_t>(-1);
  options.use_cost_bound = false;
  options.max_depth = max_depth;
  return options;
}

/// Serial reference: parse `text` into a fresh manager, run the serial
/// engine, and return the solution in the portable rank form the pool
/// reports — the comparison is then a plain struct equality.
PoolResult serial_reference(const std::string& text,
                            const SolverOptions& options) {
  BddManager mgr{0};
  const BooleanRelation r = read_relation(mgr, text);
  const SolveResult solved = SearchEngine(r, options).run();
  PoolResult out;
  out.solution =
      make_portable_solution(make_memo_space(r), solved.function, solved.cost);
  out.cost = solved.cost;
  out.stats = solved.stats;
  return out;
}

TEST(GlobalMemoTest, KeysAreManagerAndOffsetIndependent) {
  // The same relation materialized in two managers at different variable
  // offsets must produce identical canonical keys — that is the whole
  // point of rank remapping.
  BddManager mgr_a{0};
  RelationSpace space_a = make_space(mgr_a, 2, 2);
  const BooleanRelation a = fig1_relation(mgr_a, space_a);

  BddManager mgr_b{0};
  (void)mgr_b.add_vars(5);  // shift the block: offsets differ
  RelationSpace space_b = make_space(mgr_b, 2, 2);
  const BooleanRelation b = fig1_relation(mgr_b, space_b);

  const GlobalMemoKey key_a =
      make_memo_key(make_memo_space(a), a.characteristic());
  const GlobalMemoKey key_b =
      make_memo_key(make_memo_space(b), b.characteristic());
  EXPECT_EQ(key_a, key_b);

  // A different relation over the same spaces keys differently.
  const BooleanRelation c = fig10_relation(mgr_a, space_a);
  EXPECT_FALSE(key_a ==
               make_memo_key(make_memo_space(c), c.characteristic()));
}

TEST(GlobalMemoTest, KeysAreIdenticalFromAReorderedManager) {
  // The acceptance pin for dynamic reordering x the service layer: the
  // canonical key is the identity-order serialized characteristic, so a
  // manager whose variable order was sifted away from var == level still
  // produces byte-identical keys — warm memo entries written before a
  // reorder keep hitting after it, in any slot, at any order.
  BddManager plain{0};
  RelationSpace space_a = make_space(plain, 2, 2);
  const BooleanRelation a = fig10_relation(plain, space_a);
  const GlobalMemoKey key_plain =
      make_memo_key(make_memo_space(a), a.characteristic());

  BddManager sifted{0};
  RelationSpace space_b = make_space(sifted, 2, 2);
  const BooleanRelation b = fig10_relation(sifted, space_b);
  // A reversed-pair side function drags the relation's variables away
  // from var == level when sifted (the relation alone is too small to
  // guarantee the order actually moves).
  const std::uint32_t extra = sifted.add_vars(4);
  Bdd skew = sifted.zero();
  for (std::uint32_t i = 0; i < 4; ++i) {
    skew = skew | (sifted.var(i) & sifted.var(extra + 3 - i));
  }
  sifted.reorder();
  ASSERT_FALSE(sifted.has_identity_order());
  const GlobalMemoKey key_sifted =
      make_memo_key(make_memo_space(b), b.characteristic());
  EXPECT_EQ(key_plain, key_sifted);

  // And a solution memoized by an identity-order run materializes
  // correctly inside the reordered manager (the warm-hit import path).
  const SolveResult solved = SearchEngine(a, deterministic_options(6)).run();
  const PortableSolution portable = make_portable_solution(
      make_memo_space(a), solved.function, solved.cost);
  const MultiFunction imported =
      import_portable_solution(sifted, make_memo_space(b), portable);
  EXPECT_TRUE(b.is_compatible(imported));
  // Re-serializing from the reordered destination closes the loop.
  EXPECT_EQ(make_portable_solution(make_memo_space(b), imported, solved.cost),
            portable);
}

TEST(GlobalMemoTest, SameChiDifferentSpacesKeyDifferently) {
  // The constant-ONE characteristic describes both "2 in / 2 out" and
  // "3 in / 1 out" complete relations; the solutions differ, so the keys
  // must too (the spaces ride inside the key).
  BddManager mgr{4};
  const BooleanRelation r22 = BooleanRelation::full(mgr, {0, 1}, {2, 3});
  const BooleanRelation r31 = BooleanRelation::full(mgr, {0, 1, 2}, {3});
  EXPECT_FALSE(
      make_memo_key(make_memo_space(r22), r22.characteristic()) ==
      make_memo_key(make_memo_space(r31), r31.characteristic()));
}

TEST(GlobalMemoTest, SolutionsRoundTripAcrossManagers) {
  BddManager src{0};
  RelationSpace space = make_space(src, 2, 2);
  const BooleanRelation r = fig1_relation(src, space);
  const SolveResult solved =
      SearchEngine(r, deterministic_options(6)).run();
  const MemoSpace src_space = make_memo_space(r);
  const PortableSolution portable =
      make_portable_solution(src_space, solved.function, solved.cost);

  // Rebuild the relation (and the solution) in an offset manager.
  BddManager dst{0};
  (void)dst.add_vars(3);
  RelationSpace dst_rs = make_space(dst, 2, 2);
  const BooleanRelation r2 = fig1_relation(dst, dst_rs);
  const MultiFunction imported =
      import_portable_solution(dst, make_memo_space(r2), portable);
  EXPECT_TRUE(r2.is_compatible(imported));
  // Re-serializing from the destination gives the same canonical form.
  EXPECT_EQ(make_portable_solution(make_memo_space(r2), imported,
                                   solved.cost),
            portable);
}

TEST(GlobalMemoTest, CapacityEvictsLruButImprovesPresentKeysInPlace) {
  BddManager mgr{4};
  const BooleanRelation r22 = BooleanRelation::full(mgr, {0, 1}, {2, 3});
  const BooleanRelation r31 = BooleanRelation::full(mgr, {0, 1, 2}, {3});
  const auto key_a = std::make_shared<const GlobalMemoKey>(
      make_memo_key(make_memo_space(r22), r22.characteristic()));
  const auto key_b = std::make_shared<const GlobalMemoKey>(
      make_memo_key(make_memo_space(r31), r31.characteristic()));

  GlobalMemo memo{1};
  PortableSolution sol;
  sol.outputs.push_back(SerializedBdd{});  // constant ONE placeholder
  sol.cost = 10.0;
  memo.publish(*key_a, sol);
  EXPECT_EQ(memo.size(), 1u);

  // Unmarked entries are invisible to probes (completeness protocol)...
  EXPECT_FALSE(memo.lookup(*key_a).has_value());
  // ...until the producing run drains and marks them.
  const std::shared_ptr<const GlobalMemoKey> touched[] = {key_a, key_b};
  memo.mark_complete(touched);  // key_b absent: skipped, not resurrected
  ASSERT_TRUE(memo.lookup(*key_a).has_value());
  EXPECT_DOUBLE_EQ(memo.lookup(*key_a)->cost, 10.0);

  // A better solution for a present key lands in place: no eviction.
  sol.cost = 4.0;
  memo.publish(*key_a, sol);
  EXPECT_EQ(memo.evictions(), 0u);
  ASSERT_TRUE(memo.lookup(*key_a).has_value());
  EXPECT_DOUBLE_EQ(memo.lookup(*key_a)->cost, 4.0);

  // A worse one does not regress the entry.
  sol.cost = 7.0;
  memo.publish(*key_a, sol);
  EXPECT_DOUBLE_EQ(memo.lookup(*key_a)->cost, 4.0);

  // At capacity a brand-new key is ADMITTED and the least-recently-used
  // entry makes room for it (the old policy dropped the newcomer, which
  // froze a long-lived service's memo at its first working set).
  memo.publish(*key_b, sol);
  EXPECT_EQ(memo.size(), 1u);
  EXPECT_EQ(memo.evictions(), 1u);
  EXPECT_FALSE(memo.lookup(*key_a).has_value());  // evicted
  // The newcomer is present (still incomplete, hence unservable).
  memo.mark_complete({&key_b, 1});
  ASSERT_TRUE(memo.lookup(*key_b).has_value());
}

TEST(GlobalMemoTest, MarkCompleteRefusesForeignEntriesRecreatedAfterEviction) {
  // The eviction hole the run stamps close: run A's entry for key K is
  // evicted mid-run, a concurrent run B re-creates K holding only B's
  // partial solution, then A drains and marks its touched keys.  A must
  // NOT flip B's entry — that would serve B's degraded partial as a
  // final result forever.
  BddManager mgr{4};
  const BooleanRelation rk = BooleanRelation::full(mgr, {0, 1}, {2, 3});
  const BooleanRelation rj = BooleanRelation::full(mgr, {0, 1, 2}, {3});
  const auto key_k = std::make_shared<const GlobalMemoKey>(
      make_memo_key(make_memo_space(rk), rk.characteristic()));
  const auto key_j = std::make_shared<const GlobalMemoKey>(
      make_memo_key(make_memo_space(rj), rj.characteristic()));

  GlobalMemo memo{1};
  PortableSolution good;
  good.outputs.push_back(SerializedBdd{});
  good.cost = 1.0;
  PortableSolution partial = good;
  partial.cost = 9.0;

  const MemoRunStamp run_a = memo.begin_run();
  memo.publish(*key_k, good, run_a.run_id);   // A's subtree best
  memo.publish(*key_j, good, 0);              // flood: evicts K
  const MemoRunStamp run_b = memo.begin_run();
  memo.publish(*key_k, partial, run_b.run_id);  // B re-creates K, evicting J

  memo.mark_complete({&key_k, 1}, run_a);  // A drains: must not vouch
  EXPECT_FALSE(memo.lookup(*key_k).has_value())
      << "a foreign mid-run entry was stamped complete";

  memo.mark_complete({&key_k, 1}, run_b);  // B drains: its own entry
  ASSERT_TRUE(memo.lookup(*key_k).has_value());
  EXPECT_DOUBLE_EQ(memo.lookup(*key_k)->cost, 9.0);

  // Pre-existing entries (created before a run started) are always
  // vouched for — the normal warm-service case.
  const MemoRunStamp run_c = memo.begin_run();
  memo.mark_complete({&key_k, 1}, run_c);  // still complete, no change
  EXPECT_TRUE(memo.lookup(*key_k).has_value());
}

TEST(GlobalMemoTest, HotKeySurvivesColdKeyFlood) {
  // The property LRU buys a long-lived service: a key that keeps being
  // probed stays resident while a stream of one-shot keys churns through
  // the capacity bound.
  BddManager mgr{6};
  // Structurally distinct characteristics (rank remapping would fold
  // same-shape relations over different variables into ONE key, so the
  // flood uses 32 distinct minterm cubes over the same space instead).
  const auto key_for = [&](std::uint32_t pattern) {
    Bdd chi = mgr.one();
    for (std::uint32_t b = 0; b < 5; ++b) {
      chi = chi & mgr.literal(b, ((pattern >> b) & 1u) != 0);
    }
    const std::vector<std::uint32_t> iranks{0, 1, 2, 3, 4};
    const std::vector<std::uint32_t> oranks{5};
    return GlobalMemoKey(serialize_bdd(chi), iranks, oranks);
  };
  const auto hot = std::make_shared<const GlobalMemoKey>(key_for(0));

  constexpr std::size_t kCapacity = 8;
  GlobalMemo memo{kCapacity};
  PortableSolution sol;
  sol.outputs.push_back(SerializedBdd{});
  sol.cost = 1.0;
  memo.publish(*hot, sol);
  memo.mark_complete({&hot, 1});
  ASSERT_TRUE(memo.lookup(*hot).has_value());

  // Flood with ~4x capacity distinct cold keys (the 31 remaining minterm
  // patterns), probing the hot key along the way (that is what "hot"
  // means).  Each cold key is published once and never touched again.
  constexpr std::uint32_t kFloods = 31;
  for (std::uint32_t i = 1; i <= kFloods; ++i) {
    memo.publish(key_for(i), sol);
    ASSERT_TRUE(memo.lookup(*hot).has_value())
        << "hot key evicted after " << i << " cold publishes";
  }
  EXPECT_EQ(memo.size(), kCapacity);
  EXPECT_GT(memo.evictions(), 0u);
  EXPECT_TRUE(memo.lookup(*hot).has_value());
  EXPECT_DOUBLE_EQ(memo.lookup(*hot)->cost, 1.0);
}

TEST(GlobalMemoTest, TruncatedRunsDoNotPoisonTheMemo) {
  // The service-layer hazard the completeness protocol exists for: a
  // run stopped by its budget publishes only partial, degraded memos.
  // Without the protocol those entries would serve every later
  // identical request at zero exploration — the degraded result locked
  // in forever, invisible to the caller (no budget_exhausted flag on
  // the warm path).  With it, the truncated run's publishes stay
  // invisible, the next solve re-explores, and only ITS naturally
  // drained results become servable.
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);
  const BooleanRelation r = fig10_relation(mgr, space);
  SolverOptions truncated;
  truncated.cost = sum_of_bdd_sizes();
  truncated.use_cost_bound = false;
  truncated.max_relations = 1;  // stops right after the root expansion
  truncated.global_memo = std::make_shared<GlobalMemo>();
  const SolveResult degraded = SearchEngine(r, truncated).run();
  ASSERT_TRUE(degraded.stats.budget_exhausted);

  // Same fingerprint (cost + mode), full budget: must NOT be served the
  // truncated run's root entry — it must re-explore and do better.
  SolverOptions full = truncated;
  full.max_relations = static_cast<std::size_t>(-1);
  const SolveResult second = SearchEngine(r, full).run();
  EXPECT_EQ(second.stats.memo_hits, 0u)
      << "a truncated run's partial memos were served";
  EXPECT_GT(second.stats.relations_explored, 1u);
  EXPECT_FALSE(second.stats.budget_exhausted);
  // Never worse than the truncated result (on fig10 the QuickSolver net
  // happens to tie the optimum, so equality is possible — the property
  // under test is the re-exploration above, not strict improvement).
  EXPECT_LE(second.cost, degraded.cost);

  // The drained run's results ARE servable: third solve is pure warm.
  const SolveResult warm = SearchEngine(r, full).run();
  EXPECT_EQ(warm.stats.relations_explored, 0u);
  EXPECT_EQ(warm.stats.memo_hits, 1u);
  EXPECT_DOUBLE_EQ(warm.cost, second.cost);
  EXPECT_TRUE(r.is_compatible(warm.function));
}

TEST(GlobalMemoTest, RejectsMismatchedFingerprintReuse) {
  GlobalMemo memo;
  memo.bind(MemoFingerprint{"size", false});
  memo.bind(MemoFingerprint{"size", false});  // idempotent
  EXPECT_THROW(memo.bind(MemoFingerprint{"size2", false}),
               std::invalid_argument);
  EXPECT_THROW(memo.bind(MemoFingerprint{"size", true}),
               std::invalid_argument);
}

TEST(SolverPoolTest, ResultsAreBitIdenticalToSerialAcrossWorkerCounts) {
  // The acceptance bar: in the schedule-independent configuration the
  // pool returns the SAME portable solution (serialized node lists, not
  // just costs) as the serial engine, for every benchmark instance, at
  // 1, 2 and 4 workers.  The memo stays off here: with it on, requests
  // of *overlapping* relations may legally exchange partial results.
  const SolverOptions options = deterministic_options(6);
  std::vector<std::string> texts;
  std::vector<PoolResult> expected;
  for (const RelationBenchmark& bench : relation_suite()) {
    BddManager mgr{0};
    std::vector<std::uint32_t> inputs;
    std::vector<std::uint32_t> outputs;
    const BooleanRelation r =
        make_benchmark_relation(mgr, bench, inputs, outputs);
    texts.push_back(write_relation_bdd(r));
    expected.push_back(serial_reference(texts.back(), options));
  }
  for (const std::size_t workers : {1u, 2u, 4u}) {
    PoolOptions pool_options;
    pool_options.workers = workers;
    pool_options.solver = options;
    pool_options.share_memo = false;
    SolverPool pool(pool_options);
    std::vector<std::future<PoolResult>> futures;
    for (const std::string& text : texts) {
      futures.push_back(pool.submit(text));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const PoolResult result = futures[i].get();
      EXPECT_EQ(result.solution, expected[i].solution)
          << relation_suite()[i].name << " at " << workers << " workers";
      EXPECT_DOUBLE_EQ(result.cost, expected[i].cost)
          << relation_suite()[i].name;
      EXPECT_EQ(result.stats.relations_explored,
                expected[i].stats.relations_explored)
          << relation_suite()[i].name;
      EXPECT_LT(result.worker_id, workers);
    }
    EXPECT_EQ(pool.requests_served(), texts.size());
  }
}

TEST(SolverPoolTest, WarmMemoResolveExploresNothingAtEqualCost) {
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r = make_benchmark_relation(
      mgr, relation_suite().front(), inputs, outputs);
  const std::string text = write_relation_bdd(r);

  PoolOptions pool_options;
  pool_options.workers = 2;
  pool_options.solver = deterministic_options(4);
  SolverPool pool(pool_options);

  // Sequential: the cold solve fully publishes before the warm probe.
  const PoolResult cold = pool.submit(text).get();
  EXPECT_GT(cold.stats.relations_explored, 0u);
  EXPECT_EQ(cold.stats.memo_hits, 0u);

  const PoolResult warm = pool.submit(text).get();
  EXPECT_EQ(warm.stats.relations_explored, 0u);
  EXPECT_EQ(warm.stats.memo_hits, 1u);
  EXPECT_DOUBLE_EQ(warm.cost, cold.cost);
  EXPECT_EQ(warm.solution, cold.solution);

  // The memoized solution satisfies the relation when materialized.
  BddManager check{0};
  const BooleanRelation r2 = read_relation(check, text);
  EXPECT_TRUE(r2.is_compatible(import_pool_solution(check, r2, warm)));
  EXPECT_GT(pool.memo()->hits(), 0u);
}

TEST(SolverPoolTest, ConcurrentSubmissionFromManyThreadsIsSafe) {
  // Many submitter threads, a mix of identical and distinct relations,
  // shared memo ON — the configuration with maximal cross-thread
  // traffic (queue, memo probes/publishes from every slot).  Every
  // result must be compatible with its relation; identical relations
  // must agree on cost with the serial engine's schedule-independent
  // result whenever they were served cold OR warm (the memo only ever
  // offers equal-or-better entries for the *same* canonical key, and
  // entries improve monotonically toward the drained optimum).
  std::vector<std::string> texts;
  {
    BddManager mgr{0};
    RelationSpace space = make_space(mgr, 2, 2);
    texts.push_back(write_relation_bdd(fig1_relation(mgr, space)));
    texts.push_back(write_relation_bdd(fig10_relation(mgr, space)));
    texts.push_back(write_relation_bdd(fig8_relation(mgr, space)));
  }

  PoolOptions pool_options;
  pool_options.workers = 4;
  pool_options.solver = deterministic_options(static_cast<std::size_t>(-1));
  SolverPool pool(pool_options);

  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kPerThread = 6;
  std::vector<std::future<PoolResult>> futures(kSubmitters * kPerThread);
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t k = 0; k < kPerThread; ++k) {
        futures[t * kPerThread + k] =
            pool.submit(texts[(t + k) % texts.size()]);
      }
    });
  }
  for (std::thread& t : submitters) {
    t.join();
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const PoolResult result = futures[i].get();
    const std::string& text =
        texts[(i / kPerThread + i % kPerThread) % texts.size()];
    BddManager check{0};
    const BooleanRelation r = read_relation(check, text);
    EXPECT_TRUE(r.is_compatible(import_pool_solution(check, r, result)));
  }
  EXPECT_EQ(pool.requests_served(), futures.size());
}

TEST(SolverPoolTest, RecycledSlotsKeepNumVarsBounded) {
  // ROADMAP follow-up pinned here: a slot manager reclaims its whole
  // variable block between requests (reset_variables), so a long-lived
  // pool's num_vars equals the width of ONE request — the 100th recycled
  // request sees exactly the same variable count as the first, instead
  // of the old fresh-block-per-request linear growth.
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);
  const std::string text = write_relation_bdd(fig1_relation(mgr, space));

  PoolOptions pool_options;
  pool_options.workers = 1;  // every request lands on the same slot
  pool_options.solver = deterministic_options(4);
  SolverPool pool(pool_options);

  std::uint32_t width = 0;
  for (int i = 0; i < 100; ++i) {
    const PoolResult result = pool.submit(text).get();
    if (i == 0) {
      width = result.manager_num_vars;
      EXPECT_GT(width, 0u);
    }
    ASSERT_EQ(result.manager_num_vars, width)
        << "slot num_vars grew on request " << i;
  }
  EXPECT_EQ(pool.requests_served(), 100u);
}

TEST(SolverPoolTest, ParseAndValidationErrorsFlowThroughTheFuture) {
  SolverPool pool(PoolOptions{});
  // Malformed text.
  EXPECT_THROW(pool.submit(std::string(".i 1\n.o 1\n.r\nxx 1\n.e\n")).get(),
               std::invalid_argument);
  // Well-formed but not well-defined (vertex 1 has an empty image).
  EXPECT_THROW(pool.submit(std::string(".i 1\n.o 1\n.r\n0 1\n.e\n")).get(),
               std::invalid_argument);
  // The pool survives failed requests and keeps serving.
  const PoolResult ok =
      pool.submit(std::string(".i 1\n.o 1\n.r\n0 1\n1 0\n.e\n")).get();
  EXPECT_EQ(ok.solution.outputs.size(), 1u);
}

TEST(SolverPoolTest, SubmitAfterShutdownThrows) {
  SolverPool pool(PoolOptions{});
  const PoolResult first =
      pool.submit(std::string(".i 1\n.o 1\n.r\n0 1\n1 0\n.e\n")).get();
  EXPECT_DOUBLE_EQ(first.cost, first.solution.cost);
  pool.shutdown();
  pool.shutdown();  // idempotent
  EXPECT_THROW((void)pool.submit(std::string(".i 1\n.o 1\n.r\n0 1\n.e\n")),
               std::runtime_error);
}

/// int3 (6 inputs, 4 outputs) serialized — large enough that an
/// unbounded exploration cannot drain within a short deadline.
std::string large_instance_text() {
  BddManager mgr{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const BooleanRelation r =
      make_benchmark_relation(mgr, relation_suite()[2], inputs, outputs);
  return write_relation_bdd(r);
}

/// Pool whose requests explore without budget or depth caps — only a
/// deadline (or the pool-wide timeout) can stop them on int3.
PoolOptions unbounded_pool(std::size_t workers) {
  PoolOptions options;
  options.workers = workers;
  options.solver.cost = sum_of_bdd_sizes();
  options.solver.max_relations = static_cast<std::size_t>(-1);
  options.solver.use_cost_bound = false;
  return options;
}

/// The satellite pin: a request whose deadline expires mid-solve must
/// still RESOLVE its future (flagged, best-so-far solution) rather than
/// leave the caller blocked forever — at 1 worker and at 4.
TEST(SolverPoolDeadlineTest, ShortDeadlineResolvesEveryFuture) {
  const std::string text = large_instance_text();
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    SolverPool pool(unbounded_pool(workers));
    RequestOptions request;
    request.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
    std::vector<std::future<PoolResult>> futures;
    for (std::size_t i = 0; i < workers + 1; ++i) {
      futures.push_back(pool.submit(text, request));
    }
    for (auto& future : futures) {
      // A hang here IS the regression; give a generous hard bound so a
      // failure reports instead of wedging the suite.
      ASSERT_EQ(future.wait_for(std::chrono::seconds(60)),
                std::future_status::ready)
          << workers << " workers";
      const PoolResult result = future.get();
      EXPECT_TRUE(result.stats.budget_exhausted) << workers << " workers";
      EXPECT_TRUE(result.deadline_expired) << workers << " workers";
      // The engine seeds its incumbent before exploring, so a request
      // that got ANY solve time reports a usable best-so-far solution.
      if (!result.solution.outputs.empty()) {
        BddManager mgr{0};
        const BooleanRelation r = read_relation(mgr, text);
        const MultiFunction f = import_pool_solution(mgr, r, result);
        EXPECT_TRUE(r.is_compatible(f)) << workers << " workers";
      }
    }
  }
}

TEST(SolverPoolDeadlineTest, AlreadyExpiredDeadlineResolvesEmpty) {
  SolverPool pool(unbounded_pool(1));
  RequestOptions request;
  request.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(10);
  const PoolResult result = pool.submit(large_instance_text(), request).get();
  EXPECT_TRUE(result.deadline_expired);
  EXPECT_TRUE(result.stats.budget_exhausted);
  EXPECT_TRUE(result.solution.outputs.empty());
  EXPECT_TRUE(std::isinf(result.cost));
}

TEST(SolverPoolDeadlineTest, NoDeadlineRequestsAreUnflagged) {
  SolverPool pool(PoolOptions{});
  const PoolResult result =
      pool.submit(std::string(".i 1\n.o 1\n.r\n0 1\n1 0\n.e\n")).get();
  EXPECT_FALSE(result.deadline_expired);
}

TEST(SolverPoolPriorityTest, InteractiveOvertakesQueuedBatch) {
  // One worker, blocked on a slow request; a Batch job queued FIRST must
  // lose its mailbox to an Interactive job queued after it.
  const std::string slow = large_instance_text();
  BddManager mgr{0};
  RelationSpace space = make_space(mgr, 2, 2);
  const std::string fast = write_relation_bdd(fig1_relation(mgr, space));

  PoolOptions options = unbounded_pool(1);
  options.solver.timeout = std::chrono::milliseconds(300);
  SolverPool pool(options);

  auto blocker = pool.submit(slow);
  // The blocker must be IN a slot (not queued) before the contenders
  // arrive, or the pop order under test never happens.
  while (pool.queue_depth() != 0) {
    std::this_thread::yield();
  }
  RequestOptions batch;
  batch.priority = RequestPriority::Batch;
  auto batch_future = pool.submit(slow, batch);
  auto interactive_future = pool.submit(fast);  // default = Interactive

  ASSERT_EQ(interactive_future.wait_for(std::chrono::seconds(60)),
            std::future_status::ready);
  // The interactive answer arrived while the batch job was still queued
  // or (at worst) just picked up — it cannot have been SERVED first, or
  // its 300ms-timeout solve would have delayed the interactive answer
  // past it.
  EXPECT_NE(batch_future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  (void)blocker.get();
  (void)batch_future.get();
  (void)interactive_future.get();
}

TEST(SolverPoolTest, PoolRejectsMemoWarmedUnderAnotherObjective) {
  // A caller-supplied memo that served "size" cannot back a "size2"
  // pool: the fingerprint clash surfaces at construction, not as silent
  // wrong pruning requests later.
  auto memo = std::make_shared<GlobalMemo>();
  memo->bind(MemoFingerprint{"size", false});
  PoolOptions pool_options;
  pool_options.solver.cost = sum_of_squared_bdd_sizes();
  pool_options.solver.global_memo = memo;
  EXPECT_THROW(SolverPool{pool_options}, std::invalid_argument);
}

TEST(SolverPoolTest, OrderMemorySkipsSiftingRampOnRepeatTraffic) {
  // An incremental slot remembers the variable order its previous
  // same-signature solve sifted into and seeds the next parse with it,
  // so repeat traffic skips the sifting ramp entirely.
  //
  // The chained-equality relation y_i == x_i is the classic order
  // pathology: with the text order x0..x{n-1} y0..y{n-1} its
  // characteristic needs ~2^n nodes, interleaved ~3n — so the cold
  // parse lands far above the Auto trigger and the solve sifts, while
  // a warm parse seeded with the sifted order stays far below it.
  constexpr std::uint32_t kPairs = 8;
  BddManager author{0};
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint32_t> outputs;
  const std::uint32_t x0 = author.add_vars(kPairs);
  const std::uint32_t y0 = author.add_vars(kPairs);
  Bdd chi = author.one();
  for (std::uint32_t i = 0; i < kPairs; ++i) {
    inputs.push_back(x0 + i);
    outputs.push_back(y0 + i);
    chi = chi & !(author.var(x0 + i) ^ author.var(y0 + i));
  }
  const BooleanRelation r(author, inputs, outputs, chi);
  // Identity order in the authoring manager: the text carries no
  // `.order` sidecar, so any good order must come from the slot's memory.
  ASSERT_TRUE(author.has_identity_order());
  const std::string text = write_relation_bdd(r);

  PoolOptions options;
  options.workers = 1;         // both requests hit the same slot
  options.share_memo = false;  // a root memo hit would skip the solve
  options.incremental = true;  // arms the slot's order memory
  options.solver = deterministic_options(2);
  options.solver.reorder = ReorderMode::Auto;
  options.solver.reorder_trigger = 600;  // under the ~2^9-node cold parse
  SolverPool pool(options);

  const PoolResult cold = pool.submit(text).get();
  const PoolResult warm = pool.submit(text).get();
  EXPECT_GT(cold.stats.reorder_swaps, 0u);
  EXPECT_EQ(warm.stats.reorder_swaps, 0u);
  // Order memory changes where variables sit, never what is computed.
  EXPECT_EQ(cold.solution, warm.solution);
}

}  // namespace
}  // namespace brel
